package wal

// Store-level durability tests: recovery round-trips, crash simulation at
// every record boundary and at random torn offsets (the recovered store
// must be bit-identical to a reference that applied exactly the durable
// prefix), checkpoint + replay interplay across the manifest/truncation
// crash windows, degraded read-only mode on WAL faults, and the
// background checkpointer under a committing writer (run with -race).

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/value"
)

func testSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "a", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num},
			schema.Column{Name: "b", Type: schema.Base}),
		schema.MustRelation("S",
			schema.Column{Name: "y", Type: schema.Num},
			schema.Column{Name: "c", Type: schema.Base}),
	)
}

func seedFn() (*db.Database, error) { return db.New(testSchema()), nil }

// randBatch draws a small batch for one relation, reusing small pools of
// strings, floats and null IDs so interning and indexing see duplicates.
// NaN and -0 show up so recovery is checked on the bit-pattern edge
// cases.
func randBatch(rng *rand.Rand, s *schema.Schema) (string, []value.Tuple) {
	rel := s.Relations()[rng.Intn(len(s.Relations()))]
	n := 1 + rng.Intn(4)
	tuples := make([]value.Tuple, n)
	for i := range tuples {
		t := make(value.Tuple, len(rel.Columns))
		for j, c := range rel.Columns {
			if c.Type == schema.Base {
				if rng.Intn(4) == 0 {
					t[j] = value.NullBase(rng.Intn(6))
				} else {
					t[j] = value.Base(fmt.Sprintf("s%d", rng.Intn(8)))
				}
				continue
			}
			switch rng.Intn(8) {
			case 0:
				t[j] = value.NullNum(rng.Intn(6))
			case 1:
				t[j] = value.Num(math.NaN())
			case 2:
				t[j] = value.Num(math.Copysign(0, -1))
			default:
				t[j] = value.Num(math.Round(rng.NormFloat64()*4) / 2)
			}
		}
		tuples[i] = t
	}
	return rel.Name, tuples
}

// fingerprint captures every db-level observable through the exported
// API: row counts, materialized tuples, inventories, the null-variable
// indexing, dictionary order, and every equality index probed at every
// occurring value.
type fingerprint struct {
	Lens      map[string]int
	Tuples    map[string][]string
	BaseNulls []int
	NumNulls  []int
	NNIndex   map[int]int
	BaseConst []string
	NumConst  []uint64 // bit patterns: NaN/-0 must round-trip exactly
	Indexes   map[string]map[string][]int32
}

func fp(d *db.Database) fingerprint {
	f := fingerprint{
		Lens:      map[string]int{},
		Tuples:    map[string][]string{},
		BaseNulls: append([]int(nil), d.BaseNulls()...),
		NumNulls:  append([]int(nil), d.NumNulls()...),
		NNIndex:   map[int]int{},
		BaseConst: append([]string(nil), d.BaseConstants()...),
		Indexes:   map[string]map[string][]int32{},
	}
	// Cnum(D) is a set under float equality: whether +0 or -0 represents
	// the zero element (and where NaNs land in the ordering) depends on
	// scan order, so canonicalize -0 and compare as a sorted multiset.
	for _, x := range d.NumConstants() {
		b := math.Float64bits(x)
		if b == math.Float64bits(math.Copysign(0, -1)) {
			b = 0
		}
		f.NumConst = append(f.NumConst, b)
	}
	sort.Slice(f.NumConst, func(i, j int) bool { return f.NumConst[i] < f.NumConst[j] })
	_, idx := d.NumNullIndex()
	for id, i := range idx {
		f.NNIndex[id] = i
	}
	for _, rel := range d.Schema().Relations() {
		f.Lens[rel.Name] = d.Len(rel.Name)
		for _, tup := range d.Tuples(rel.Name) {
			f.Tuples[rel.Name] = append(f.Tuples[rel.Name], tup.String())
		}
		for col := range rel.Columns {
			probes := map[string][]int32{}
			ix := d.Index(rel.Name, col)
			for _, tup := range d.Tuples(rel.Name) {
				v := tup[col]
				if _, dup := probes[v.String()]; dup {
					continue
				}
				probes[v.String()] = append([]int32(nil), ix.Lookup(d, v)...)
			}
			f.Indexes[fmt.Sprintf("%s.%d", rel.Name, col)] = probes
		}
	}
	return f
}

func mustEqualFP(t *testing.T, label string, got, want fingerprint) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: recovered state diverged:\ngot  %+v\nwant %+v", label, got, want)
	}
}

func TestStoreOpenRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Seed: seedFn})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	ref := db.New(testSchema())
	for i := 0; i < 30; i++ {
		rel, tuples := randBatch(rng, s.DB().Schema())
		if err := s.InsertBatch(rel, tuples); err != nil {
			t.Fatal(err)
		}
		if err := ref.InsertBatch(rel, tuples); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Seq(); got != 30 {
		t.Fatalf("seq = %d, want 30", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{}) // no seed needed: state exists
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Seq(); got != 30 {
		t.Fatalf("recovered seq = %d, want 30", got)
	}
	mustEqualFP(t, "restart", fp(s2.DB()), fp(ref))

	// An invalid batch is rejected before it reaches the log and changes
	// nothing.
	if err := s2.InsertBatch("R", []value.Tuple{{value.Num(1)}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if got := s2.Seq(); got != 30 {
		t.Fatalf("seq moved to %d on invalid batch", got)
	}
	mustEqualFP(t, "after invalid batch", fp(s2.DB()), fp(ref))
}

// TestStoreCrashRecoveryFuzz is the core acceptance test: for a random
// batch workload it simulates a crash at every record boundary and at
// random torn offsets inside records, recovers from the surviving bytes,
// and asserts the recovered store is bit-identical — tuples, indexes,
// inventories, null indexing, dictionary — to a reference database that
// applied exactly the batches whose records survive whole.
func TestStoreCrashRecoveryFuzz(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, err := Open(dir, Options{Seed: seedFn})
			if err != nil {
				t.Fatal(err)
			}
			type step struct {
				rel    string
				tuples []value.Tuple
			}
			var (
				steps  []step
				bounds = []int64{0} // WAL offset after each acknowledged batch
			)
			n := 10 + rng.Intn(15)
			for i := 0; i < n; i++ {
				rel, tuples := randBatch(rng, s.DB().Schema())
				if err := s.InsertBatch(rel, tuples); err != nil {
					t.Fatal(err)
				}
				steps = append(steps, step{rel, tuples})
				s.mu.Lock()
				bounds = append(bounds, s.log.Size())
				s.mu.Unlock()
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			walData, err := os.ReadFile(filepath.Join(dir, logName))
			if err != nil {
				t.Fatal(err)
			}
			ckpt, err := os.ReadFile(filepath.Join(dir, manifestName))
			if err != nil {
				t.Fatal(err)
			}
			ckptDirName := ""
			fmt.Sscanf(string(ckpt), "arithdb-checkpoint v1\nseq 0\ndir %s", &ckptDirName)
			if ckptDirName == "" {
				t.Fatalf("unexpected manifest: %q", ckpt)
			}

			// references[k] = fingerprint after exactly k durable batches.
			references := make([]fingerprint, n+1)
			ref := db.New(testSchema())
			references[0] = fp(ref)
			for k, st := range steps {
				if err := ref.InsertBatch(st.rel, st.tuples); err != nil {
					t.Fatal(err)
				}
				references[k+1] = fp(ref)
			}

			// Crash points: every record boundary, plus random torn offsets
			// strictly inside records.
			cuts := map[int64]bool{}
			for _, b := range bounds {
				cuts[b] = true
			}
			for i := 0; i < 20; i++ {
				cuts[rng.Int63n(int64(len(walData))+1)] = true
			}
			for cut := range cuts {
				crashDir := t.TempDir()
				// The checkpoint (and manifest) were durable before the
				// first append; the crash tears only the WAL.
				if err := os.CopyFS(crashDir, os.DirFS(dir)); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(crashDir, logName), walData[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				rs, err := Open(crashDir, Options{})
				if err != nil {
					t.Fatalf("cut %d: recovery failed: %v", cut, err)
				}
				durable := 0
				for _, b := range bounds[1:] {
					if b <= cut {
						durable++
					}
				}
				if got := rs.Seq(); got != uint64(durable) {
					t.Fatalf("cut %d: recovered seq %d, want %d", cut, got, durable)
				}
				mustEqualFP(t, fmt.Sprintf("cut %d (%d durable)", cut, durable),
					fp(rs.DB()), references[durable])
				// The recovered store accepts new durable work.
				if err := rs.InsertBatch("S", []value.Tuple{{value.Num(7), value.Base("post")}}); err != nil {
					t.Fatalf("cut %d: insert after recovery: %v", cut, err)
				}
				rs.Close()
			}
		})
	}
}

// TestStoreCheckpointCoversPrefix: checkpoints truncate the covered WAL
// prefix, recovery = checkpoint + tail replay, and the crash window
// between manifest commit and WAL truncation (stale records on disk) is
// idempotent thanks to sequence numbers.
func TestStoreCheckpointCoversPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Seed: seedFn})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	ref := db.New(testSchema())
	apply := func(k int) {
		for i := 0; i < k; i++ {
			rel, tuples := randBatch(rng, ref.Schema())
			if err := s.InsertBatch(rel, tuples); err != nil {
				t.Fatal(err)
			}
			if err := ref.InsertBatch(rel, tuples); err != nil {
				t.Fatal(err)
			}
		}
	}
	apply(12)
	preSize := s.log.Size()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.CheckpointSeq() != 12 {
		t.Fatalf("checkpoint seq %d, want 12", s.CheckpointSeq())
	}
	if got := s.log.Size(); got >= preSize {
		t.Fatalf("WAL not truncated: %d >= %d", got, preSize)
	}
	apply(7)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Plain recovery: checkpoint + the 7-record tail.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Seq(); got != 19 {
		t.Fatalf("recovered seq %d, want 19", got)
	}
	mustEqualFP(t, "checkpoint+tail", fp(s2.DB()), fp(ref))

	// Crash window: manifest committed but WAL truncation never ran —
	// prepend stale pre-checkpoint records; replay must skip them.
	tail, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	var stale []byte
	stale = appendRecord(stale, 3, encodeBatch(nil, "R", []value.Tuple{{value.Base("stale"), value.Num(0), value.Base("stale")}}))
	stale = appendRecord(stale, 12, encodeBatch(nil, "S", []value.Tuple{{value.Num(-1), value.Base("stale")}}))
	if err := os.WriteFile(filepath.Join(dir, logName), append(stale, tail...), 0o644); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := s3.Seq(); got != 19 {
		t.Fatalf("seq with stale prefix %d, want 19", got)
	}
	mustEqualFP(t, "stale prefix skipped", fp(s3.DB()), fp(ref))
}

// TestStoreDegradedOnWALFault: a failed append or fsync flips the store
// to read-only — the failed batch is not applied, later writes fail with
// ErrDegraded, reads keep working, and checkpoints refuse to run.
func TestStoreDegradedOnWALFault(t *testing.T) {
	for _, tc := range []struct {
		name string
		arm  func(*FaultFS) // trip the very next matching operation
	}{
		{"append-fails", func(f *FaultFS) { f.FailWriteAt = f.Writes() + 1 }},
		{"sync-fails", func(f *FaultFS) { f.FailSyncAt = f.Syncs() + 1 }},
		{"short-write", func(f *FaultFS) { f.ShortWriteAt = f.Writes() + 1; f.ShortWriteBytes = 7 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := &FaultFS{Inner: OSFS{}}
			s, err := Open(dir, Options{Seed: seedFn, FS: ffs})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			good := []value.Tuple{{value.Num(1), value.Base("ok")}}
			for i := 0; i < 2; i++ {
				if err := s.InsertBatch("S", good); err != nil {
					t.Fatal(err)
				}
			}
			tc.arm(ffs) // no store goroutines are running: safe to mutate
			before := fp(s.DB())
			err = s.InsertBatch("S", []value.Tuple{{value.Num(9), value.Base("doomed")}})
			if err == nil {
				t.Fatal("faulted insert succeeded")
			}
			reason, degraded := s.Degraded()
			if !degraded || reason == "" {
				t.Fatalf("store not degraded after WAL fault (reason %q)", reason)
			}
			// The failed batch never reached memory; reads still work.
			mustEqualFP(t, "after fault", fp(s.DB()), before)
			if err := s.InsertBatch("S", good); !errors.Is(err, ErrDegraded) {
				t.Fatalf("write after degradation: %v, want ErrDegraded", err)
			}
			if err := s.Checkpoint(); !errors.Is(err, ErrDegraded) {
				t.Fatalf("checkpoint while degraded: %v, want ErrDegraded", err)
			}
			if got := s.Seq(); got != 2 {
				t.Fatalf("seq %d after degradation, want 2", got)
			}
		})
	}
}

// TestStoreCheckpointerUnderWriter runs the background checkpointer at a
// tiny period while a writer commits and readers fingerprint snapshots —
// the -race regime — then recovers from the directory and checks parity
// with a reference applying every batch.
func TestStoreCheckpointerUnderWriter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Seed: seedFn, CheckpointEvery: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.DB().Snapshot()
				a, b := fp(snap), fp(snap)
				if !reflect.DeepEqual(a, b) {
					t.Error("snapshot moved under a reader")
					return
				}
			}
		}()
	}
	rng := rand.New(rand.NewSource(77))
	ref := db.New(testSchema())
	for i := 0; i < 150; i++ {
		rel, tuples := randBatch(rng, ref.Schema())
		if err := s.InsertBatch(rel, tuples); err != nil {
			t.Fatal(err)
		}
		if err := ref.InsertBatch(rel, tuples); err != nil {
			t.Fatal(err)
		}
		if i%40 == 0 {
			time.Sleep(3 * time.Millisecond) // let checkpoints interleave
		}
	}
	close(stop)
	wg.Wait()
	if s.CheckpointSeq() == 0 {
		t.Fatal("background checkpointer never ran")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Seq(); got != 150 {
		t.Fatalf("recovered seq %d, want 150", got)
	}
	mustEqualFP(t, "checkpointer under writer", fp(s2.DB()), fp(ref))
}

// TestStoreSweepsOrphans: half-written checkpoint directories and temp
// files from a crashed checkpoint are removed on the next Open.
func TestStoreSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Seed: seedFn})
	if err != nil {
		t.Fatal(err)
	}
	s.InsertBatch("S", []value.Tuple{{value.Num(1), value.Base("a")}})
	s.Close()
	orphan := filepath.Join(dir, ckptName(99))
	os.MkdirAll(orphan, 0o755)
	os.WriteFile(filepath.Join(orphan, "junk"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("torn"), 0o644)
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan checkpoint survived the sweep")
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName+".tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp manifest survived the sweep")
	}
	if got := s2.Seq(); got != 1 {
		t.Fatalf("seq %d after sweep, want 1", got)
	}
}
