// Package value defines the two-sorted value model of the paper:
// constants and marked nulls of a base type and of a numerical type.
//
// Base-type values come from an uninterpreted domain Cbase (represented as
// strings) or are marked nulls ⊥i from Nbase. Numerical values come from
// Cnum ⊆ ℝ (represented as float64) or are marked nulls ⊤i from Nnum.
// Marked nulls are identified by small integer IDs: two occurrences of the
// same null denote the same unknown value.
package value

import (
	"fmt"
	"strconv"
)

// Kind discriminates the four kinds of database values.
type Kind uint8

const (
	// BaseConst is a constant of the base (uninterpreted) type.
	BaseConst Kind = iota
	// NumConst is a constant of the numerical type (an element of ℝ).
	NumConst
	// BaseNull is a marked null ⊥i occurring in a base-type column.
	BaseNull
	// NumNull is a marked null ⊤i occurring in a numerical column.
	NumNull
)

// String returns a human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case BaseConst:
		return "base constant"
	case NumConst:
		return "numerical constant"
	case BaseNull:
		return "base null"
	case NumNull:
		return "numerical null"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single database entry. The zero value is the base constant "".
// Values are comparable and can be used as map keys.
type Value struct {
	kind Kind
	str  string  // payload for BaseConst
	num  float64 // payload for NumConst
	id   int     // payload for BaseNull / NumNull
}

// Base returns a base-type constant.
func Base(s string) Value { return Value{kind: BaseConst, str: s} }

// Num returns a numerical constant.
func Num(x float64) Value { return Value{kind: NumConst, num: x} }

// NullBase returns the marked base-type null ⊥id.
func NullBase(id int) Value { return Value{kind: BaseNull, id: id} }

// NullNum returns the marked numerical null ⊤id.
func NullNum(id int) Value { return Value{kind: NumNull, id: id} }

// Kind reports which of the four kinds of value v is.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is a marked null of either type.
func (v Value) IsNull() bool { return v.kind == BaseNull || v.kind == NumNull }

// IsNumeric reports whether v belongs to the numerical sort
// (a numerical constant or a numerical null).
func (v Value) IsNumeric() bool { return v.kind == NumConst || v.kind == NumNull }

// IsBase reports whether v belongs to the base sort.
func (v Value) IsBase() bool { return v.kind == BaseConst || v.kind == BaseNull }

// Str returns the string payload of a base constant.
// It panics if v is not a base constant.
func (v Value) Str() string {
	if v.kind != BaseConst {
		panic(fmt.Sprintf("value: Str on %v", v.kind))
	}
	return v.str
}

// Float returns the numerical payload of a numerical constant.
// It panics if v is not a numerical constant.
func (v Value) Float() float64 {
	if v.kind != NumConst {
		panic(fmt.Sprintf("value: Float on %v", v.kind))
	}
	return v.num
}

// NullID returns the identifier of a marked null.
// It panics if v is not a null.
func (v Value) NullID() int {
	if !v.IsNull() {
		panic(fmt.Sprintf("value: NullID on %v", v.kind))
	}
	return v.id
}

// String renders the value in the notation of the paper:
// base constants verbatim, numerical constants as decimals,
// ⊥i for base nulls and ⊤i for numerical nulls.
func (v Value) String() string {
	switch v.kind {
	case BaseConst:
		return v.str
	case NumConst:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case BaseNull:
		return fmt.Sprintf("⊥%d", v.id)
	case NumNull:
		return fmt.Sprintf("⊤%d", v.id)
	}
	return "?"
}

// Tuple is a sequence of values, one per column of a relation.
type Tuple []Value

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	s := "("
	for i, v := range t {
		if i > 0 {
			s += ", "
		}
		s += v.String()
	}
	return s + ")"
}

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether two tuples are identical component-wise
// (syntactic equality: nulls are equal only to themselves).
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Key returns a string usable as a map key identifying the tuple contents.
func (t Tuple) Key() string {
	s := ""
	for _, v := range t {
		switch v.kind {
		case BaseConst:
			s += "b" + strconv.Itoa(len(v.str)) + ":" + v.str
		case NumConst:
			s += "n" + strconv.FormatFloat(v.num, 'b', -1, 64)
		case BaseNull:
			s += "B" + strconv.Itoa(v.id)
		case NumNull:
			s += "N" + strconv.Itoa(v.id)
		}
		s += "|"
	}
	return s
}
