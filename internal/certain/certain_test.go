package certain

import (
	"testing"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/poly"
	"repro/internal/schema"
	"repro/internal/value"
)

func naiveSchema() *schema.Schema {
	return schema.MustNew(
		schema.MustRelation("R",
			schema.Column{Name: "a", Type: schema.Base},
			schema.Column{Name: "b", Type: schema.Base}),
		schema.MustRelation("S",
			schema.Column{Name: "a", Type: schema.Base}),
	)
}

func TestNaiveEvalBasics(t *testing.T) {
	d := db.New(naiveSchema())
	d.MustInsert("R", value.Base("x"), value.NullBase(0))
	d.MustInsert("S", value.Base("x"))

	// ∃a,b. R(a,b) ∧ S(a): witnessed by ("x", ⊥0).
	q := fo.MustParseQuery(`q() := exists a:base, b:base . (R(a, b) and S(a))`)
	got, err := NaiveEval(q, d, nil)
	if err != nil || !got {
		t.Errorf("got %v, %v; want true", got, err)
	}
	// ∃a. S(a) ∧ R(a, a): ⊥0 ≠ "x" under naive semantics.
	q2 := fo.MustParseQuery(`q() := exists a:base . (S(a) and R(a, a))`)
	got2, err := NaiveEval(q2, d, nil)
	if err != nil || got2 {
		t.Errorf("got %v, %v; want false", got2, err)
	}
}

func TestNaiveEvalOpenQuery(t *testing.T) {
	d := db.New(naiveSchema())
	d.MustInsert("R", value.Base("x"), value.NullBase(0))

	q := fo.MustParseQuery(`q(a:base, b:base) := R(a, b)`)
	// The permissive semantics of [28]: (x, ⊥0) is itself an almost-certain
	// answer.
	got, err := NaiveEval(q, d, []value.Value{value.Base("x"), value.NullBase(0)})
	if err != nil || !got {
		t.Errorf("(x, ⊥0): got %v, %v; want true", got, err)
	}
	// But (x, "y") is not.
	got2, err := NaiveEval(q, d, []value.Value{value.Base("x"), value.Base("y")})
	if err != nil || got2 {
		t.Errorf("(x, y): got %v, %v; want false", got2, err)
	}
}

func TestNaiveEvalRejectsArithmetic(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("T", schema.Column{Name: "x", Type: schema.Num}))
	d := db.New(s)
	d.MustInsert("T", value.NullNum(0))
	q := fo.MustParseQuery(`q() := exists x:num . (T(x) and x > 0)`)
	if _, err := NaiveEval(q, d, nil); err == nil {
		t.Error("order comparison accepted by naive evaluation")
	}
}

// TestNaiveMatchesMeasureOne: for generic queries, naive evaluation agrees
// with μ = 1 computed by the engine — the zero-one law of [27] that the
// paper's framework extends.
func TestNaiveMatchesMeasureOne(t *testing.T) {
	d := db.New(naiveSchema())
	d.MustInsert("R", value.Base("x"), value.NullBase(0))
	d.MustInsert("S", value.NullBase(1))

	e := core.New(core.Options{})
	queries := []string{
		`q() := exists a:base, b:base . R(a, b)`,
		`q() := exists a:base . (S(a) and not (a == "x"))`,
		`q() := exists a:base . (S(a) and a == "x")`,
		`q() := forall a:base . (S(a) -> exists b:base . R(b, a))`,
	}
	for _, src := range queries {
		q := fo.MustParseQuery(src)
		naive, err := NaiveEval(q, d, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Measure(q, d, nil, 0.1, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Method != core.MethodTrivial {
			t.Errorf("%s: method %s, want trivial (no numerical nulls)", src, res.Method)
		}
		if (res.Value == 1) != naive {
			t.Errorf("%s: μ = %g but naive = %v", src, res.Value, naive)
		}
	}
}

func TestHasIntegerRoot(t *testing.T) {
	// x² + y² - 25 has roots (3,4), (5,0), ...
	x, y := poly.Var(2, 0), poly.Var(2, 1)
	p := x.Mul(x).Add(y.Mul(y)).Sub(poly.Const(2, 25))
	root, found := HasIntegerRoot(p, 6)
	if !found {
		t.Fatal("missed a root of x²+y²-25")
	}
	if p.Eval(root) != 0 {
		t.Errorf("claimed root %v does not vanish", root)
	}
	// x² - 2 has no integer roots.
	q := poly.Var(1, 0).Mul(poly.Var(1, 0)).Sub(poly.Const(1, 2))
	if _, found := HasIntegerRoot(q, 1000); found {
		t.Error("found an integer √2")
	}
	if _, found := HasIntegerRoot(q, -1); found {
		t.Error("negative bound should find nothing")
	}
}

// TestDiophantineDemo: the Prop 4.1 reduction. Over valuations bounded by
// B, the query ∃x̄ R(x̄) ∧ p² > 0 fails to be certain exactly when p has an
// integer root within the bound.
func TestDiophantineDemo(t *testing.T) {
	x, y := poly.Var(2, 0), poly.Var(2, 1)
	p := x.Mul(x).Add(y.Mul(y)).Sub(poly.Const(2, 25))
	q, d, err := DiophantineQuery(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := fo.Typecheck(q, d.Schema()); err != nil {
		t.Fatalf("gadget query ill-typed: %v", err)
	}
	// Check over all integer valuations with |v| ≤ 6: the query is true for
	// each valuation except the roots.
	failures := 0
	for vx := -6; vx <= 6; vx++ {
		for vy := -6; vy <= 6; vy++ {
			val := db.NewValuation()
			val.Num[0], val.Num[1] = float64(vx), float64(vy)
			cd, err := val.Apply(d)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := fo.FromComplete(cd)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := fo.Eval(q, inst, nil)
			if err != nil {
				t.Fatal(err)
			}
			isRoot := p.Eval([]float64{float64(vx), float64(vy)}) == 0
			if truth == isRoot {
				t.Errorf("valuation (%d,%d): query=%v isRoot=%v", vx, vy, truth, isRoot)
			}
			if !truth {
				failures++
			}
		}
	}
	// The circle x²+y²=25 has 12 integer points.
	if failures != 12 {
		t.Errorf("query failed on %d valuations, want 12 (lattice points of the circle)", failures)
	}
	if _, _, err := DiophantineQuery(poly.Const(0, 1)); err == nil {
		t.Error("variable-free polynomial accepted")
	}
}
