// Command experiments regenerates the paper's experimental evaluation
// (Section 9, Figure 1) and its in-text analytic claims.
//
// Figure 1: for each of the three decision-support queries, the synthetic
// sales database is generated, the query is evaluated conditionally (the
// candidate tuples and their constraints — the role Postgres plays in the
// paper), and then the AFPRAS confidence computation is timed for every
// error level ε = 0.01 .. 0.1 in steps of 0.005, the paper's 19-point
// sweep. Absolute times differ from the paper's Python-on-i5 setup; the
// reproduced shape is the ε⁻² growth and the relative cost of the three
// queries.
//
// Usage:
//
//	experiments -fig all            # the three Figure 1 sweeps
//	experiments -check all          # intro example, arctan family, μ_r, gadget
//	experiments -fig 1a -products 100000 -orders 80000 -market 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/big"
	"os"
	"time"

	arithdb "repro"
	"repro/internal/reductions"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	fig := flag.String("fig", "", "figure to regenerate: 1a, 1b, 1c or all")
	check := flag.String("check", "", "analytic checks: intro, arctan, radius, gadget or all")
	products := flag.Int("products", 20000, "Products tuples (paper regime: 100000)")
	orders := flag.Int("orders", 16000, "Orders tuples (paper regime: 80000)")
	market := flag.Int("market", 4000, "Market tuples (paper regime: 20000)")
	nullRate := flag.Float64("nullrate", 0.1, "numerical null rate")
	marketNullRate := flag.Float64("marketnullrate", 0.5,
		"null rate of the web-extracted Market relation (paper: \"high chance of incomplete data\")")
	seed := flag.Int64("seed", 2020, "random seed")
	flag.Parse()

	if *fig == "" && *check == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *check != "" {
		runChecks(*check)
	}
	if *fig != "" {
		runFigures(*fig, arithdb.SalesConfig{
			Seed: *seed, Products: *products, Orders: *orders, Market: *market,
			NullRate: *nullRate, MarketNullRate: *marketNullRate,
			Segments: *market / 2, // two competing offers per segment
		})
	}
}

type figure struct {
	id   string
	name string
	sql  string
}

var figures = []figure{
	{"1a", "Competitive Advantage", arithdb.QueryCompetitiveAdvantage},
	{"1b", "Never Knowingly Undersold", arithdb.QueryNeverKnowinglyUndersold},
	{"1c", "Unfair Discount", arithdb.QueryUnfairDiscount},
}

func runFigures(which string, cfg arithdb.SalesConfig) {
	fmt.Printf("generating sales database (%d/%d/%d tuples, null rate %.2f, seed %d)...\n",
		cfg.Products, cfg.Orders, cfg.Market, cfg.NullRate, cfg.Seed)
	start := time.Now()
	d, err := arithdb.GenerateSales(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d tuples in %v\n\n", d.Size(), time.Since(start).Round(time.Millisecond))

	for _, f := range figures {
		if which != "all" && which != f.id {
			continue
		}
		runFigure(f, d)
	}
}

func runFigure(f figure, d *arithdb.Database) {
	fmt.Printf("== Figure %s: %s ==\n", f.id, f.name)
	// One session per figure: the conditional evaluation runs through the
	// planner/executor, and the per-ε sweep reuses the session engine's
	// compiled-formula cache.
	sess := arithdb.NewSession(d, arithdb.EngineOptions{
		Seed:             7,
		PaperSampleCount: true,
		DisableExact:     true,
		ForceSampling:    true,
	})
	joinStart := time.Now()
	res, err := sess.SQL(f.sql)
	if err != nil {
		log.Fatal(err)
	}
	joinTime := time.Since(joinStart)
	fmt.Printf("conditional evaluation: %d candidates, %d derivations, %v\n",
		len(res.Candidates), res.Derivations, joinTime.Round(time.Millisecond))

	// The paper's sweep: ε from 0.1 down to 0.01 in steps of 0.005, with
	// the paper's m = ⌈ε⁻²⌉ sample count (confidence 3/4 per the Chernoff
	// analysis of Section 8). Exact shortcuts are disabled so the timing
	// reflects the Monte-Carlo phase being measured.
	engine := sess.Engine()
	fmt.Printf("%8s %10s %14s\n", "ε·10³", "samples", "time")
	for e := 100; e >= 10; e -= 5 {
		eps := float64(e) / 1000
		t0 := time.Now()
		samples := 0
		for _, c := range res.Candidates {
			m, err := engine.MeasureFormula(c.Phi, eps, 0.25)
			if err != nil {
				log.Fatal(err)
			}
			samples += m.Samples
		}
		dt := time.Since(t0)
		fmt.Printf("%8d %10d %14s\n", e, samples, dt.Round(10*time.Microsecond))
	}

	// End-to-end fused pipeline at ε = 0.05: enumeration streamed into
	// concurrent measurement (same seeds as MeasureBatch).
	t0 := time.Now()
	fused, err := sess.MeasureSQL(f.sql, 0.05, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fused join+measure (ε=0.05): %d candidates in %v\n\n",
		len(fused.Candidates), time.Since(t0).Round(time.Millisecond))
}

func runChecks(which string) {
	all := which == "all"
	if all || which == "intro" {
		checkIntro()
	}
	if all || which == "arctan" {
		checkArctan()
	}
	if all || which == "radius" {
		checkRadius()
	}
	if all || which == "gadget" {
		checkGadget()
	}
}

// checkIntro reproduces the introduction example's numbers.
func checkIntro() {
	fmt.Println("== check: introduction example (constraint (1)) ==")
	s := arithdb.MustSchema(arithdb.MustRelation("R",
		arithdb.Col("x", arithdb.NumCol), arithdb.Col("y", arithdb.NumCol)))
	d := arithdb.NewDatabase(s)
	d.MustInsert("R", arithdb.NullNum(0), arithdb.NullNum(1))
	// constraint (1): y ≥ 0 ∧ x ≥ 8 ∧ 0.7y ≥ x, as a query over (⊤0, ⊤1).
	q := arithdb.MustParseQuery(
		`q() := exists x:num, y:num . (R(x, y) and y >= 0 and x >= 8 and 0.7 * y >= x)`)
	engine := arithdb.NewEngine(arithdb.EngineOptions{Seed: 3})
	res, err := engine.Measure(q, d, nil, 0.01, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	want := (math.Pi/2 - math.Atan(10.0/7)) / (2 * math.Pi)
	fmt.Printf("measured ν = %.4f   (method %s)\n", res.Value, res.Method)
	fmt.Printf("analytic ν = %.4f = (π/2 − arctan(10/7))/2π\n", want)
	fmt.Printf("fraction of positive quadrant = %.4f (paper: ≈0.388)\n\n", res.Value*4)
}

// checkArctan reproduces Prop 6.1's closed-form family.
func checkArctan() {
	fmt.Println("== check: arctan family (Prop 6.1) ==")
	fmt.Printf("%8s %12s %12s %10s\n", "α", "measured μ", "analytic", "rational?")
	engine := arithdb.NewEngine(arithdb.EngineOptions{Seed: 3})
	s := arithdb.MustSchema(arithdb.MustRelation("R",
		arithdb.Col("x", arithdb.NumCol), arithdb.Col("y", arithdb.NumCol)))
	for _, alpha := range []float64{-3, -1, 0, 0.5, 1, 2} {
		d := arithdb.NewDatabase(s)
		d.MustInsert("R", arithdb.NullNum(0), arithdb.NullNum(1))
		q, err := arithdb.ParseQuery(fmt.Sprintf(
			`q() := exists x:num, y:num . (R(x, y) and x >= 0 and y <= %g * x)`, alpha))
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Measure(q, d, nil, 0.01, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		analytic := math.Atan(alpha)/(2*math.Pi) + 0.25
		rational := "no (Niven)"
		if alpha == 0 || alpha == 1 || alpha == -1 {
			rational = "yes"
		}
		fmt.Printf("%8.2f %12.6f %12.6f %10s\n", alpha, res.Value, analytic, rational)
	}
	fmt.Println("(the paper prints μ = arctan(α)/2π + 1/2; the region {x≥0, y≤αx}")
	fmt.Println(" subtends [−π/2, arctan α], i.e. +1/4 — see EXPERIMENTS.md)")
	fmt.Println()
}

// checkRadius demonstrates the Section 5 well-definedness: μ_r → ν.
func checkRadius() {
	fmt.Println("== check: finite-radius convergence μ_r → μ (Section 5) ==")
	s := arithdb.MustSchema(arithdb.MustRelation("R",
		arithdb.Col("x", arithdb.NumCol), arithdb.Col("y", arithdb.NumCol)))
	d := arithdb.NewDatabase(s)
	d.MustInsert("R", arithdb.NullNum(0), arithdb.NullNum(1))
	q := arithdb.MustParseQuery(
		`q() := exists x:num, y:num . (R(x, y) and y >= 0 and x >= 8 and 0.7 * y >= x)`)
	phi, err := arithdb.Translate(q, d, nil)
	if err != nil {
		log.Fatal(err)
	}
	engine := arithdb.NewEngine(arithdb.EngineOptions{Seed: 5})
	limit := (math.Pi/2 - math.Atan(10.0/7)) / (2 * math.Pi)
	fmt.Printf("%8s %10s %10s\n", "r", "μ_r", "|μ_r−μ|")
	for _, r := range []float64{10, 40, 160, 640, 2560} {
		mu, err := engine.MuAtRadius(phi, r, 400000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8g %10.4f %10.4f\n", r, mu, math.Abs(mu-limit))
	}
	fmt.Printf("%8s %10.4f\n\n", "∞", limit)
}

// checkGadget demonstrates the Prop 6.2 / Thm 6.3 reductions.
func checkGadget() {
	fmt.Println("== check: #SAT gadgets (Prop 6.2, Thm 6.3) ==")
	f := reductions.Formula3{NumVars: 4, Clauses: []reductions.Clause{
		{{Var: 0, Neg: false}, {Var: 1, Neg: false}, {Var: 2, Neg: false}},
		{{Var: 1, Neg: true}, {Var: 2, Neg: true}, {Var: 3, Neg: false}},
	}}
	engine := arithdb.NewEngine(arithdb.EngineOptions{})

	q, d, err := reductions.DNFGadget(f)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Measure(q, d, nil, 0.05, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	want := big.NewRat(int64(f.CountDNF()), 1<<uint(f.NumVars))
	fmt.Printf("3DNF gadget (CQ(<)):  μ = %s, brute-force #ψ/2ⁿ = %s\n", res.Rat, want)

	q2, d2, err := reductions.CNFGadget(f)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := engine.Measure(q2, d2, nil, 0.05, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	want2 := big.NewRat(int64(f.CountCNF()), 1<<uint(f.NumVars))
	fmt.Printf("3CNF gadget (FO(<)):  μ = %s, brute-force #ψ/2ⁿ = %s\n\n", res2.Rat, want2)
}
