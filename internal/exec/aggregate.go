package exec

import (
	"repro/internal/db"
	"repro/internal/plan"
	"repro/internal/realfmla"
	"repro/internal/value"
)

// Candidate is one answer tuple of the conditional evaluation together
// with its constraint: the tuple is an answer under a valuation of the
// numerical nulls z exactly when Phi(z) holds. Phi is a DNF — one
// disjunct per derivation (join combination) producing the tuple, in
// derivation order. Candidates whose Phi is constantly true are ordinary
// (almost-certain) answers.
type Candidate struct {
	Tuple value.Tuple
	Phi   realfmla.Formula
}

// Result is the aggregated output of a conditional evaluation.
type Result struct {
	Candidates []Candidate
	// NullIDs maps formula variable index to numerical null ID (the same
	// convention as package translate).
	NullIDs []int
	// Index is the inverse of NullIDs.
	Index map[int]int
	// Derivations counts join combinations that survived the base
	// conditions (the size of the naive join result).
	Derivations int
}

// Aggregator folds a stream of derivations into distinct candidate
// tuples: per distinct projected tuple (in first-derivation order) the
// disjunction of its derivations' constraint conjunctions. With a
// positive limit, only the first `limit` distinct tuples keep their
// constraint disjuncts — later tuples are tracked (they can never enter
// the limit window) but cost no memory beyond their key, which is what
// makes top-k workloads cheap to stream.
type Aggregator struct {
	limit int
	byKey map[string]*agg
	kept  []*agg
	// onSaturated, when set, fires as soon as a kept candidate's
	// constraint collapses to true (a derivation with no constraint
	// atoms): its Phi can no longer change, so a fused pipeline may start
	// measuring it while enumeration continues.
	onSaturated func(idx int, c Candidate)
}

type agg struct {
	idx       int
	tuple     value.Tuple
	disjuncts []realfmla.Formula
	keep      bool
	saturated bool
}

// NewAggregator returns an aggregator for the given LIMIT (0 = none).
// onSaturated may be nil.
func NewAggregator(limit int, onSaturated func(idx int, c Candidate)) *Aggregator {
	return &Aggregator{limit: limit, byKey: make(map[string]*agg), onSaturated: onSaturated}
}

// Add folds one derivation in.
func (a *Aggregator) Add(d *Deriv) {
	key := d.Tuple.Key()
	g, ok := a.byKey[key]
	if !ok {
		g = &agg{tuple: d.Tuple, keep: a.limit <= 0 || len(a.kept) < a.limit}
		a.byKey[key] = g
		if g.keep {
			g.idx = len(a.kept)
			a.kept = append(a.kept, g)
		}
	}
	if !g.keep || g.saturated {
		return
	}
	if len(d.Conj) == 0 {
		// An unconditional derivation: Or(..., true, ...) collapses, so
		// the candidate's Phi is final and the disjunct list can go.
		g.saturated = true
		g.disjuncts = nil
		if a.onSaturated != nil {
			a.onSaturated(g.idx, Candidate{Tuple: g.tuple, Phi: realfmla.FTrue{}})
		}
		return
	}
	g.disjuncts = append(g.disjuncts, realfmla.And(d.Conj...))
}

// Finish returns the candidates in first-derivation order with the LIMIT
// applied (nil when there are none), including any already reported
// through onSaturated.
func (a *Aggregator) Finish() []Candidate {
	if len(a.kept) == 0 {
		return nil
	}
	out := make([]Candidate, len(a.kept))
	for i, g := range a.kept {
		phi := realfmla.Formula(realfmla.FTrue{})
		if !g.saturated {
			phi = realfmla.Or(g.disjuncts...)
		}
		out[i] = Candidate{Tuple: g.tuple, Phi: phi}
	}
	return out
}

// Saturated reports whether candidate idx was finalized early.
func (a *Aggregator) Saturated(idx int) bool { return a.kept[idx].saturated }

// Collect runs the plan and aggregates its derivation stream into the
// distinct candidate tuples with their constraints — the materializing
// convenience over Run for callers that want the whole Result.
func Collect(p *plan.Plan, d *db.Database, opts Options) (*Result, error) {
	res := &Result{NullIDs: p.NullIDs, Index: p.Index}
	ag := NewAggregator(p.Limit, nil)
	err := Run(p, d, opts, func(dv *Deriv) error {
		res.Derivations++
		ag.Add(dv)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Candidates = ag.Finish()
	return res, nil
}
