package plan_test

import (
	"fmt"
	"testing"

	"repro/internal/db"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/sqlfront"
	"repro/internal/value"
)

func testDB(t *testing.T) *db.Database {
	t.Helper()
	s := schema.MustNew(
		schema.MustRelation("A",
			schema.Column{Name: "k", Type: schema.Base},
			schema.Column{Name: "x", Type: schema.Num}),
		schema.MustRelation("B",
			schema.Column{Name: "k", Type: schema.Base},
			schema.Column{Name: "y", Type: schema.Num}),
		schema.MustRelation("C",
			schema.Column{Name: "k", Type: schema.Base},
			schema.Column{Name: "z", Type: schema.Num}),
	)
	d := db.New(s)
	for i := 0; i < 4; i++ {
		d.MustInsert("A", value.Base("a"), value.Num(float64(i)))
		d.MustInsert("B", value.Base("a"), value.Num(float64(i)))
	}
	d.MustInsert("C", value.Base("a"), value.NullNum(0))
	return d
}

func build(t *testing.T, src string, opts plan.Options) *plan.Plan {
	t.Helper()
	q := sqlfront.MustParse(src)
	p, err := plan.Build(q, testDB(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPushdownPlacesConditionsEarliest(t *testing.T) {
	p := build(t, `SELECT A.k FROM A A, B B WHERE A.k = B.k AND A.x > 1 AND B.y < A.x`, plan.Options{})
	if len(p.Conds) != 3 {
		t.Fatalf("%d conds", len(p.Conds))
	}
	// Canonical order sorts by (original join position, WHERE index):
	// A.x>1 is pushed down to step 0 and comes first, then the join and
	// the two-sided numeric condition at step 1.
	if p.Conds[0].Kind != plan.CondNumCmp || p.Conds[0].Step != 0 {
		t.Errorf("cond 0 = %+v, want the pushed-down A.x>1 at step 0", p.Conds[0])
	}
	if p.Conds[1].Kind != plan.CondBaseEq || p.Conds[1].Step != 1 {
		t.Errorf("cond 1 = %+v, want the join at step 1", p.Conds[1])
	}
	if p.Conds[2].Kind != plan.CondNumCmp || p.Conds[2].Step != 1 {
		t.Errorf("cond 2 = %+v, want B.y<A.x at step 1", p.Conds[2])
	}
}

func TestAccessPathSelection(t *testing.T) {
	p := build(t, `SELECT A.k FROM A A, B B WHERE A.k = B.k`, plan.Options{})
	if p.Steps[0].Access != plan.FullScan {
		t.Errorf("step 0 access = %v, want full scan", p.Steps[0].Access)
	}
	if p.Steps[1].Access != plan.IndexEq {
		t.Fatalf("step 1 access = %v, want index probe", p.Steps[1].Access)
	}
	if p.Steps[1].LocalCol != 0 || p.Steps[1].Outer != (plan.CellRef{Step: 0, Col: 0}) {
		t.Errorf("probe = col %d from %+v", p.Steps[1].LocalCol, p.Steps[1].Outer)
	}

	p = build(t, `SELECT A.x FROM A A WHERE A.k = 'a'`, plan.Options{})
	if p.Steps[0].Access != plan.IndexConst || p.Steps[0].Lit != value.Base("a") {
		t.Errorf("constant filter not indexed: %+v", p.Steps[0])
	}
}

func TestReorderPullsJoinBeforeCartesian(t *testing.T) {
	src := `SELECT B.k FROM A A, C C, B B WHERE B.k = A.k`
	p := build(t, src, plan.Options{Reorder: true})
	if p.Identity {
		t.Fatalf("cartesian-first order kept: %v", p.Order)
	}
	// The unrelated C must come after the A⋈B join.
	pos := map[string]int{}
	for s, st := range p.Steps {
		pos[st.Alias] = s
	}
	if pos["C"] != 2 {
		t.Errorf("order %v: C at step %d, want last", p.Order, pos["C"])
	}
	if p.Steps[pos["B"]].Access != plan.IndexEq && p.Steps[pos["A"]].Access != plan.IndexEq {
		t.Errorf("reordered plan lost the index probe: %+v", p.Steps)
	}

	// Without the toggle the FROM order stands.
	p = build(t, src, plan.Options{})
	if !p.Identity {
		t.Errorf("Reorder=false changed the order: %v", p.Order)
	}
}

func TestConnectedFromOrderKept(t *testing.T) {
	p := build(t, `SELECT A.k FROM A A, B B, C C WHERE A.k = B.k AND B.k = C.k`, plan.Options{Reorder: true})
	if !p.Identity {
		t.Errorf("fully connected FROM order was reordered: %v", p.Order)
	}
}

// TestCostReorderByFanout: with identical connectivity patterns, the
// planner deviates from the FROM order exactly when the distinct-key
// statistics say the reordered join is strictly cheaper even after the
// derivation-order-restore penalty.
func TestCostReorderByFanout(t *testing.T) {
	s := schema.MustNew(
		schema.MustRelation("Wide",
			schema.Column{Name: "k", Type: schema.Base}),
		schema.MustRelation("Keyed",
			schema.Column{Name: "k", Type: schema.Base}),
	)
	d := db.New(s)
	for i := 0; i < 30; i++ {
		// Every Wide row carries the same key (distinct = 1, so probing
		// Wide fans out 30×); Keyed has one row per key (fanout 1).
		d.MustInsert("Wide", value.Base("dup"))
		d.MustInsert("Keyed", value.Base(fmt.Sprintf("k%d", i)))
	}
	q := sqlfront.MustParse(`SELECT W.k FROM Keyed K, Wide W WHERE W.k = K.k`)
	// Identity order probes Wide per Keyed row (est. 30 + 30·30 = 930);
	// starting from Wide costs 30 + 30·1 + 30 restore penalty = 90.
	p, err := plan.Build(q, d, plan.Options{Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Identity {
		t.Errorf("high-fanout FROM order kept: %v", p.Order)
	}
	if p.Steps[0].Relation != "Wide" {
		t.Errorf("order %v does not start from the selective side", p.Order)
	}
	// The reverse FROM order is already the cheap one and must stand
	// (reordering would only add the restore penalty).
	p, err = plan.Build(sqlfront.MustParse(`SELECT W.k FROM Wide W, Keyed K WHERE W.k = K.k`),
		d, plan.Options{Reorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Identity {
		t.Errorf("cheap FROM order reordered: %v", p.Order)
	}
}

func TestBuildValidation(t *testing.T) {
	d := testDB(t)
	for _, src := range []string{
		`SELECT A.k FROM Nope A`,
		`SELECT A.k FROM A A, A A`,
		`SELECT X.k FROM A A`,
		`SELECT A.nope FROM A A`,
		`SELECT A.k FROM A A WHERE A.k = A.x`,
		`SELECT A.k FROM A A WHERE A.x = 'lit'`,
		`SELECT A.k FROM A A WHERE A.k * 2 > 1`,
	} {
		q := sqlfront.MustParse(src)
		if _, err := plan.Build(q, d, plan.Options{}); err == nil {
			t.Errorf("accepted %s", src)
		}
	}
}
