// Package exec is the ctxpoll positive fixture: derivation/candidate
// streaming loops with and without cancellation polls.
package exec

import "context"

// Deriv mirrors the real derivation record.
type Deriv struct{ Rows []int }

// Options mirrors the real exec options.
type Options struct{ Interrupt func() error }

// Result mirrors the real result (Derivations is the stream counter the
// analyzer keys on).
type Result struct{ Derivations int }

type cursor struct{ n int }

func (c *cursor) Next() (*Deriv, error) {
	c.n++
	if c.n > 10 {
		return nil, nil
	}
	return &Deriv{}, nil
}

func (c *cursor) advance() bool { c.n++; return c.n <= 10 }

// pullNoPoll consumes the cursor with no way to cancel — flagged.
func pullNoPoll(c *cursor) error {
	var buf []*Deriv
	for { // want `derivation/candidate loop never polls`
		dv, err := c.Next()
		if err != nil {
			return err
		}
		if dv == nil {
			break
		}
		buf = append(buf, dv)
	}
	_ = buf
	return nil
}

// pullWithInterrupt polls Options.Interrupt — clean.
func pullWithInterrupt(c *cursor, opts Options) error {
	n := 0
	for {
		dv, err := c.Next()
		if err != nil {
			return err
		}
		if dv == nil {
			return nil
		}
		n++
		if opts.Interrupt != nil && n%4096 == 0 {
			if err := opts.Interrupt(); err != nil {
				return err
			}
		}
	}
}

// pullWithCtx polls ctx.Done — clean.
func pullWithCtx(ctx context.Context, c *cursor) error {
	for {
		dv, err := c.Next()
		if err != nil {
			return err
		}
		if dv == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
	}
}

// pullDelegated hands every element to a caller-supplied callback: the
// polling obligation moves to the caller — clean.
func pullDelegated(c *cursor, emit func(*Deriv) error) error {
	for {
		dv, err := c.Next()
		if err != nil {
			return err
		}
		if dv == nil {
			return nil
		}
		if err := emit(dv); err != nil {
			return err
		}
	}
}

// advanceNoPoll is the cursor-condition shape without a poll — flagged.
func advanceNoPoll(c *cursor, res *Result) {
	for c.advance() { // want `derivation/candidate loop never polls`
		res.Derivations++
	}
}

// advancePolled is the Aggregate shape — clean.
func advancePolled(c *cursor, res *Result, opts Options) error {
	for c.advance() {
		res.Derivations++
		if opts.Interrupt != nil && res.Derivations%4096 == 0 {
			if err := opts.Interrupt(); err != nil {
				return err
			}
		}
	}
	return nil
}

// boundedLoop never touches a cursor or derivation counter — clean.
func boundedLoop(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// allowedLoop uses the escape hatch — clean.
func allowedLoop(c *cursor) {
	//lint:allow ctxpoll bounded to 10 rows by the fixture cursor
	for c.advance() {
	}
}

// missingReason keeps both diagnostics.
func missingReason(c *cursor) {
	//lint:allow ctxpoll // want `//lint:allow ctxpoll is missing a reason`
	for c.advance() { // want `derivation/candidate loop never polls`
	}
}
