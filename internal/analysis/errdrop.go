package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error returns from the durability-critical
// write paths: the WAL's append/sync/checkpoint surface
// (internal/wal) and the store insert paths (internal/db,
// internal/shard). A dropped WAL error is not just a lost message — the
// degraded read-only trip that the crash gauntlet (PR 6) depends on
// fires inside those error returns, so discarding one can acknowledge a
// write that was never made durable. It applies in every package:
// callers of the WAL live in the server, the replica loop, and the CLI.
//
// Discarding means: calling as a bare statement, assigning the error
// result to the blank identifier, or calling under go/defer (where the
// error has nowhere to go — hoist the call and check it, or wrap it in
// a closure that handles the error).
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarded errors from WAL append/sync/checkpoint and store insert paths",
	Run:  runErrDrop,
}

// errDropTargets maps package path suffixes to the method/function
// names whose error results must be consumed.
var errDropTargets = map[string]map[string]bool{
	"internal/wal": {
		"Append":         true,
		"Sync":           true,
		"Checkpoint":     true,
		"InsertBatch":    true,
		"TruncatePrefix": true,
	},
	"internal/db": {
		"Insert":      true,
		"InsertBatch": true,
	},
	"internal/shard": {
		"Insert":      true,
		"InsertBatch": true,
	},
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				pass.checkDropped(n.X, "is discarded")
			case *ast.GoStmt:
				pass.checkDropped(n.Call, "is discarded by go: the goroutine has nowhere to return it")
			case *ast.DeferStmt:
				pass.checkDropped(n.Call, "is discarded by defer: hoist the call or wrap it in a closure that handles the error")
			case *ast.AssignStmt:
				pass.checkBlankAssign(n)
			}
			return true
		})
	}
	return nil
}

// checkDropped reports if e is a call to a guarded function whose error
// result is thrown away wholesale.
func (p *Pass) checkDropped(e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := p.guardedCallee(call)
	if fn == nil {
		return
	}
	if !returnsError(fn) {
		return
	}
	p.Reportf(call.Pos(), "error return of %s.%s %s; a dropped WAL/store error bypasses the degraded-mode trip", shortPkg(fn), fn.Name(), how)
}

// checkBlankAssign reports guarded calls whose error result lands in _.
func (p *Pass) checkBlankAssign(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := p.guardedCallee(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	if res.Len() != len(as.Lhs) {
		return
	}
	for i := 0; i < res.Len(); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			p.Reportf(call.Pos(), "error return of %s.%s is assigned to _; a dropped WAL/store error bypasses the degraded-mode trip", shortPkg(fn), fn.Name())
		}
	}
}

// guardedCallee resolves the call's static callee and returns it when it
// is one of the guarded durability methods.
func (p *Pass) guardedCallee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := p.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	for suffix, names := range errDropTargets {
		if pathHasAny(fn.Pkg().Path(), suffix) && names[fn.Name()] {
			return fn
		}
	}
	return nil
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

func shortPkg(fn *types.Func) string {
	return fn.Pkg().Name()
}
