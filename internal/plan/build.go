package plan

import (
	"cmp"
	"fmt"
	"sort"

	"repro/internal/db"
	"repro/internal/sqlast"
	"repro/internal/value"
)

// Options configures planning.
type Options struct {
	// Reorder permits join reordering along base-equality edges. The
	// executor restores the original derivation order when the planner
	// deviates from the FROM-clause order, so results are unchanged;
	// reordering only changes how much work the join does.
	Reorder bool
	// NoPersistentIndexes makes the cost model gather its distinct-key
	// statistics from transient index builds instead of building (and
	// caching) the database's persistent equality indexes — set alongside
	// the executor's NoDBIndexes toggle so that ablation never touches
	// persistent state.
	NoPersistentIndexes bool
}

// Build lowers a query into a Plan over the given database, validating
// aliases, column references and condition sorts exactly as the
// pre-planner evaluator did.
func Build(q *sqlast.Query, d *db.Database, opts Options) (*Plan, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("plan: query needs at least one table")
	}
	r, err := NewResolver(q, d.Schema())
	if err != nil {
		return nil, err
	}
	b := &builder{q: q, d: d, Resolver: r}
	for _, c := range q.Select {
		if _, err := b.ColType(c); err != nil {
			return nil, err
		}
	}

	// Normalize conditions and compute their canonical order: original
	// join position (the earliest FROM position binding every referenced
	// alias), then WHERE-clause order. This is the order the pre-planner
	// evaluator appended constraint atoms in, and the executor reproduces
	// it per derivation whatever join order runs.
	type normCond struct {
		c       sqlast.Condition
		origPos int
	}
	norm := make([]normCond, 0, len(q.Where))
	for _, c := range q.Where {
		nc, err := b.Normalize(c)
		if err != nil {
			return nil, err
		}
		pos, err := b.earliestPosition(nc, b.origPos)
		if err != nil {
			return nil, err
		}
		norm = append(norm, normCond{c: nc, origPos: pos})
	}
	sort.SliceStable(norm, func(i, j int) bool { return norm[i].origPos < norm[j].origPos })

	// Base-equality adjacency between FROM positions, for join ordering,
	// plus the concrete join edges (with resolved column indices) the
	// cost model estimates fanout from.
	edges := make([][]bool, len(q.From))
	for i := range edges {
		edges[i] = make([]bool, len(q.From))
	}
	var jedges []joinEdge
	for _, nc := range norm {
		if nc.c.Kind != sqlast.CondBaseEq {
			continue
		}
		l, r := b.origPos[nc.c.LCol.Table], b.origPos[nc.c.RCol.Table]
		if l != r {
			edges[l][r], edges[r][l] = true, true
			jedges = append(jedges, joinEdge{
				l: l, r: r,
				lcol: b.rels[nc.c.LCol.Table].ColumnIndex(nc.c.LCol.Col),
				rcol: b.rels[nc.c.RCol.Table].ColumnIndex(nc.c.RCol.Col),
			})
		}
	}

	order := identityOrder(len(q.From))
	if opts.Reorder && len(q.From) > 1 {
		order = b.chooseOrder(order, edges, jedges, opts.NoPersistentIndexes)
	}

	nullIDs, nullIndex := d.NumNullIndex()
	p := &Plan{
		Schema:  d.Schema(),
		From:    q.From,
		Order:   order,
		Limit:   q.Limit,
		NullIDs: nullIDs,
		Index:   nullIndex,
	}
	p.K = len(p.NullIDs)
	p.Identity = true
	stepOf := make(map[string]int, len(q.From)) // alias → step
	for s, o := range order {
		if s != o {
			p.Identity = false
		}
		t := q.From[o]
		stepOf[t.Alias] = s
		p.Steps = append(p.Steps, Step{
			Relation:   t.Relation,
			Alias:      t.Alias,
			Rel:        b.rels[t.Alias],
			Access:     FullScan,
			AccessCond: -1,
		})
	}

	// Resolve conditions against the chosen order and push each down to
	// the earliest step at which it is checkable.
	for ci, nc := range norm {
		pc, err := b.lowerCond(nc.c, stepOf)
		if err != nil {
			return nil, err
		}
		p.Conds = append(p.Conds, pc)
		p.Steps[pc.Step].Conds = append(p.Steps[pc.Step].Conds, ci)
	}

	// Access-path selection: prefer an index probe on a base equality
	// linking the step to an earlier one, then an index lookup on a
	// base-constant filter, then a full scan.
	for s := range p.Steps {
		st := &p.Steps[s]
		for _, ci := range st.Conds {
			c := &p.Conds[ci]
			if c.Kind != CondBaseEq {
				continue
			}
			local, outer := c.L, c.R
			if local.Step != s {
				local, outer = outer, local
			}
			if local.Step == s && outer.Step < s {
				st.Access = IndexEq
				st.LocalCol = local.Col
				st.Outer = outer
				st.AccessCond = ci
				break
			}
		}
		if st.Access != FullScan {
			continue
		}
		for _, ci := range st.Conds {
			c := &p.Conds[ci]
			if c.Kind == CondBaseEqConst && c.L.Step == s {
				st.Access = IndexConst
				st.LocalCol = c.L.Col
				st.Lit = c.Lit
				st.AccessCond = ci
				break
			}
		}
	}

	// Projection.
	p.Project = make([]CellRef, len(q.Select))
	for i, c := range q.Select {
		cell, err := b.cellRef(c, stepOf)
		if err != nil {
			return nil, err
		}
		p.Project[i] = cell
	}
	return p, nil
}

type builder struct {
	q *sqlast.Query
	d *db.Database
	*Resolver
}

func (b *builder) cellRef(c sqlast.ColRef, stepOf map[string]int) (CellRef, error) {
	rel, ok := b.rels[c.Table]
	if !ok {
		return CellRef{}, fmt.Errorf("plan: unknown alias %s", c.Table)
	}
	i := rel.ColumnIndex(c.Col)
	if i < 0 {
		return CellRef{}, fmt.Errorf("plan: relation %s has no column %s", rel.Name, c.Col)
	}
	return CellRef{Step: stepOf[c.Table], Col: i}, nil
}

// earliestPosition is the position (under the given alias→position map)
// after which every alias referenced by the condition is bound.
func (b *builder) earliestPosition(c sqlast.Condition, posOf map[string]int) (int, error) {
	pos := 0
	visit := func(alias string) error {
		p, ok := posOf[alias]
		if !ok {
			return fmt.Errorf("plan: unknown alias %s", alias)
		}
		if p > pos {
			pos = p
		}
		return nil
	}
	switch c.Kind {
	case sqlast.CondBaseEq:
		if err := visit(c.LCol.Table); err != nil {
			return 0, err
		}
		if err := visit(c.RCol.Table); err != nil {
			return 0, err
		}
	case sqlast.CondBaseEqConst:
		if err := visit(c.LCol.Table); err != nil {
			return 0, err
		}
	case sqlast.CondNumCmp:
		var walk func(e *sqlast.Expr) error
		walk = func(e *sqlast.Expr) error {
			switch e.Kind {
			case sqlast.ExprCol:
				return visit(e.Col.Table)
			case sqlast.ExprConst:
				return nil
			case sqlast.ExprNeg:
				return walk(e.L)
			default:
				if err := walk(e.L); err != nil {
					return err
				}
				return walk(e.R)
			}
		}
		if err := walk(c.LExp); err != nil {
			return 0, err
		}
		if err := walk(c.RExp); err != nil {
			return 0, err
		}
	}
	return pos, nil
}

// lowerCond resolves a normalized condition's column references into cell
// references under the chosen join order and computes its pipeline step.
func (b *builder) lowerCond(c sqlast.Condition, stepOf map[string]int) (Cond, error) {
	step := 0
	bind := func(cr sqlast.ColRef) (CellRef, error) {
		cell, err := b.cellRef(cr, stepOf)
		if err != nil {
			return cell, err
		}
		if cell.Step > step {
			step = cell.Step
		}
		return cell, nil
	}
	switch c.Kind {
	case sqlast.CondBaseEq:
		l, err := bind(c.LCol)
		if err != nil {
			return Cond{}, err
		}
		r, err := bind(c.RCol)
		if err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondBaseEq, L: l, R: r, Step: step}, nil
	case sqlast.CondBaseEqConst:
		l, err := bind(c.LCol)
		if err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondBaseEqConst, L: l, Lit: value.Base(c.Lit), Step: step}, nil
	case sqlast.CondNumCmp:
		var lower func(e *sqlast.Expr) (*NumExpr, error)
		lower = func(e *sqlast.Expr) (*NumExpr, error) {
			switch e.Kind {
			case sqlast.ExprCol:
				cell, err := bind(e.Col)
				if err != nil {
					return nil, err
				}
				return &NumExpr{Kind: sqlast.ExprCol, Cell: cell}, nil
			case sqlast.ExprConst:
				return &NumExpr{Kind: sqlast.ExprConst, Const: e.Const}, nil
			case sqlast.ExprNeg:
				l, err := lower(e.L)
				if err != nil {
					return nil, err
				}
				return &NumExpr{Kind: sqlast.ExprNeg, L: l}, nil
			default:
				l, err := lower(e.L)
				if err != nil {
					return nil, err
				}
				r, err := lower(e.R)
				if err != nil {
					return nil, err
				}
				return &NumExpr{Kind: e.Kind, L: l, R: r}, nil
			}
		}
		le, err := lower(c.LExp)
		if err != nil {
			return Cond{}, err
		}
		re, err := lower(c.RExp)
		if err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondNumCmp, Op: c.Op, LExp: le, RExp: re, Step: step}, nil
	}
	return Cond{}, fmt.Errorf("plan: unknown condition kind")
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// connPattern reports, for each step after the first, whether the table
// joined there is linked by a base equality to an earlier step — i.e.
// whether the step is a hash-joinable join rather than a cartesian
// product.
func connPattern(order []int, edges [][]bool) []bool {
	pat := make([]bool, 0, len(order)-1)
	for i := 1; i < len(order); i++ {
		conn := false
		for j := 0; j < i && !conn; j++ {
			conn = edges[order[i]][order[j]]
		}
		pat = append(pat, conn)
	}
	return pat
}

// betterPattern reports whether pattern a joins strictly earlier than b:
// at the first step where they differ, a is equality-connected and b is
// not. Ties keep the FROM-clause order (and its streaming guarantee).
func betterPattern(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i]
		}
	}
	return false
}

// joinEdge is one base-equality link between two FROM positions, with the
// column indices resolved, so the cost model can ask the database for
// per-column distinct-key counts.
type joinEdge struct {
	l, r       int
	lcol, rcol int
}

// chooseOrder is the cost-based join ordering: candidate left-deep orders
// are built greedily (always extending with the equality-connected table
// of smallest estimated fanout), and a candidate replaces the FROM-clause
// order only when it is strictly better — either it joins along equality
// edges strictly earlier (avoiding a cartesian product the FROM order
// forces), or it has the same connectivity pattern and a strictly lower
// estimated cost including the buffer-and-sort penalty every reordered
// plan pays to restore derivation order (see exec.Run). Ties keep the
// FROM order and its streaming guarantee.
func (b *builder) chooseOrder(identity []int, edges [][]bool, jedges []joinEdge, transientStats bool) []int {
	n := len(b.q.From)
	size := make([]float64, n)
	hasEdge := make([]bool, n)
	for i, t := range b.q.From {
		size[i] = float64(b.d.Len(t.Relation))
		for j := 0; j < n; j++ {
			hasEdge[i] = hasEdge[i] || edges[i][j]
		}
	}

	// fanout estimates the per-outer-row match count of joining position
	// t through its local column c: |t| / distinct(t.c). The distinct
	// count is one Index call — a sequential scan over the columnar
	// layout on first use, cached on the database afterwards and kept
	// fresh by incremental index maintenance: an insert extends the
	// cached groups in place, so the estimate tracks the live relation
	// without a rebuild (or a
	// transient build when persistent indexes are disabled).
	distinct := make(map[[2]int]float64)
	fanout := func(t, c int) float64 {
		key := [2]int{t, c}
		dv, ok := distinct[key]
		if !ok {
			if transientStats {
				dv = float64(b.d.BuildIndex(b.q.From[t].Relation, c).Distinct())
			} else {
				dv = float64(b.d.Index(b.q.From[t].Relation, c).Distinct())
			}
			distinct[key] = dv
		}
		if dv <= 0 {
			return 0
		}
		return size[t] / dv
	}
	// bestFanout is the most selective equality edge linking position t
	// to the bound set (-1 when none applies).
	bestFanout := func(t int, bound []int) float64 {
		f := -1.0
		for _, e := range jedges {
			o, c := -1, 0
			if e.l == t {
				o, c = e.r, e.lcol
			} else if e.r == t {
				o, c = e.l, e.rcol
			}
			if o < 0 {
				continue
			}
			for _, j := range bound {
				if j == o {
					if est := fanout(t, c); f < 0 || est < f {
						f = est
					}
					break
				}
			}
		}
		return f
	}

	// estimate costs a left-deep order: scanned rows of the first table
	// plus every intermediate cardinality, with equality joins scaled by
	// estimated fanout and cartesian steps by table size; non-identity
	// orders add the final cardinality once more for the derivation-order
	// restore (buffer + sort) the executor performs.
	estimate := func(order []int) float64 {
		card := size[order[0]]
		work := card
		for i := 1; i < n; i++ {
			t := order[i]
			if f := bestFanout(t, order[:i]); f >= 0 {
				card *= f
			} else {
				card *= size[t]
			}
			work += card
		}
		if !isIdentity(order) {
			work += card
		}
		return work
	}

	// greedyFrom grows an order from a start table, always taking the
	// connected candidate with the smallest estimated fanout (ties: the
	// smaller table, then the earlier FROM position), falling back to the
	// smallest remaining table when nothing is connected.
	greedyFrom := func(start int) []int {
		used := make([]bool, n)
		order := []int{start}
		used[start] = true
		for len(order) < n {
			next, nextF := -1, -1.0
			for i := 0; i < n; i++ {
				if used[i] {
					continue
				}
				f := bestFanout(i, order)
				if f < 0 {
					continue
				}
				// cmp.Compare rather than raw float equality: identical for
				// the finite fanouts bestFanout produces, but a total order,
				// so a pathological NaN estimate cannot destabilize the
				// greedy tie-break.
				if c := cmp.Compare(f, nextF); next < 0 || c < 0 || (c == 0 && size[i] < size[next]) {
					next, nextF = i, f
				}
			}
			if next < 0 {
				for i := 0; i < n; i++ {
					if used[i] {
						continue
					}
					if next < 0 || size[i] < size[next] {
						next = i
					}
				}
			}
			order = append(order, next)
			used[next] = true
		}
		return order
	}

	best := identity
	bestPat := connPattern(identity, edges)
	bestCost := estimate(identity)
	for start := 0; start < n; start++ {
		if !hasEdge[start] && anyEdge(hasEdge) {
			continue
		}
		g := greedyFrom(start)
		gp := connPattern(g, edges)
		gc := estimate(g)
		if betterPattern(gp, bestPat) || (patternEqual(gp, bestPat) && gc < bestCost) {
			best, bestPat, bestCost = g, gp, gc
		}
	}
	return best
}

func isIdentity(order []int) bool {
	for i, o := range order {
		if i != o {
			return false
		}
	}
	return true
}

func anyEdge(hasEdge []bool) bool {
	for _, h := range hasEdge {
		if h {
			return true
		}
	}
	return false
}

func patternEqual(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
