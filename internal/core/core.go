// Package core implements the paper's primary contribution: the measure of
// certainty μ(q, D, (a,s)) ∈ [0,1] for a candidate answer to an FO(+,·,<)
// query over an incomplete database with numerical nulls (Sections 4–8).
//
// The pipeline is: translate (q, D, (a,s)) into a quantifier-free real
// formula φ with μ = ν(φ) (Theorem 5.4, package translate), then compute or
// approximate ν(φ) — the asymptotic fraction of the ball occupied by φ's
// satisfying set — with one of several interchangeable algorithms:
//
//   - exact signed-permutation-cell enumeration for order formulas
//     (rational output; the FO(<) regime of Prop 6.2);
//   - exact sector sweep for linear formulas in ≤ 2 relevant variables
//     (closed forms with arctan; Prop 6.1 and the introduction example);
//   - the FPRAS for CQ(+,<) via the volume of a union of convex cones
//     intersected with the unit ball (Section 7);
//   - the additive-error AFPRAS for all of FO(+,·,<) by sampling
//     directions and deciding asymptotic truth along rays (Section 8).
package core

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"

	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/realfmla"
	"repro/internal/translate"
	"repro/internal/value"
)

// Method identifies which algorithm produced a Result.
type Method string

// Methods reported in Result.Method.
const (
	// MethodTrivial: the formula had no relevant variables; μ ∈ {0,1}.
	MethodTrivial Method = "trivial"
	// MethodExactCells: exact rational value by signed-permutation-cell
	// enumeration (order formulas).
	MethodExactCells Method = "exact-cells"
	// MethodExactSector: exact value by circular sector sweep (linear
	// formulas in ≤ 2 relevant variables).
	MethodExactSector Method = "exact-sector"
	// MethodAFPRAS: additive-error direction sampling on the translated
	// formula (Section 8).
	MethodAFPRAS Method = "afpras"
	// MethodAFPRASDirect: additive-error direction sampling that evaluates
	// the query directly under the asymptotic numeric domain, without
	// materializing the translated formula.
	MethodAFPRASDirect Method = "afpras-direct"
	// MethodFPRAS: multiplicative-error union-of-convex-bodies volume
	// estimation (Section 7, CQ(+,<) regime).
	MethodFPRAS Method = "fpras"
	// MethodAFPRASRace: additive-error direction sampling driven by the
	// adaptive top-k race (MeasureTopK, LIMIT-k MeasureSQL): the estimate
	// is the prefix of the same deterministic sample stream the fixed
	// AFPRAS path would draw, stopped early once the candidate's
	// confidence interval resolved its top-k membership and met the eps
	// width contract. Result.SamplesDrawn/Rounds carry the spend.
	MethodAFPRASRace Method = "afpras-race"
)

// Options configures an Engine.
type Options struct {
	// Seed seeds the engine's random source. The zero value uses 1.
	Seed int64
	// Tol is the tolerance for leading-coefficient sign tests in asymptotic
	// evaluation. Default 1e-12.
	Tol float64
	// MaxExactCells bounds the number of signed-permutation cells
	// (2ⁿ · n!) the exact order algorithm may enumerate. Default 1_000_000.
	MaxExactCells int
	// DNFLimit bounds the DNF blowup in the FPRAS path. Default 4096.
	DNFLimit int
	// PaperSampleCount, when true, uses the paper's m = ⌈ε⁻²⌉ sample count
	// (confidence 3/4) instead of the Hoeffding count for the requested
	// confidence.
	PaperSampleCount bool
	// DisableExact forces the sampling paths even where an exact algorithm
	// applies (used by benchmarks and tests).
	DisableExact bool
	// ForceSampling charges the full m-sample Monte-Carlo loop even when
	// the formula has no relevant variables (a trivially decided
	// candidate). The paper's reference implementation samples every
	// candidate tuple unconditionally; benchmarks reproducing its timing
	// enable this.
	ForceSampling bool
	// PreferFPRAS routes linear formulas without an applicable exact
	// method to the Section 7 union-of-cones FPRAS (multiplicative
	// guarantee) instead of the additive AFPRAS. Nonlinear formulas still
	// fall back to the AFPRAS.
	PreferFPRAS bool
	// Workers is the number of goroutines used for intra-formula sampling
	// in the additive asymptotic sampler (AdditiveApprox and the AFPRAS
	// path of Measure/MeasureFormula; the Section 10 background and
	// distribution samplers are sequential): the m samples are split into
	// fixed-size chunks with deterministically derived per-chunk seeds,
	// so for a given Seed the result is bit-identical regardless of
	// Workers (the same contract MeasureBatch documents across items).
	// 0 uses GOMAXPROCS; 1 samples on the calling goroutine.
	Workers int
	// PoolWorkers bounds the concurrency of the candidate-measurement
	// pools (MeasureSQL, MeasureSQLStream, MeasureBatch): the number of
	// goroutines measuring candidates at once. 0 uses GOMAXPROCS. Like
	// Workers it never changes results — per-candidate engines are seeded
	// by candidate index — only scheduling; a multi-user server sets it
	// as the per-request worker budget so one request cannot monopolize
	// the machine.
	PoolWorkers int
	// CompileCacheSize bounds the engine's compiled-formula cache: the
	// variable-reduced, kernel-compiled form of each measured formula is
	// kept keyed by formula identity, so ε-sweeps over the same candidate
	// constraints compile each formula once instead of once per call.
	// 0 uses the default of 1024 entries; negative disables caching.
	CompileCacheSize int
	// NoAdaptive disables the adaptive top-k sampling race for LIMIT-k
	// MeasureSQL/MeasureSQLStream queries, restoring the fixed-budget
	// first-k-distinct-tuples semantics (every kept candidate draws the
	// full m-sample budget). Non-LIMIT queries and exact evaluation are
	// identical either way. See MeasureTopK for the race contract.
	NoAdaptive bool

	// SQL pipeline planner/executor toggles (EvaluateSQL / MeasureSQL).
	// None of them change results — the executor restores derivation
	// order and the constraint layout is canonical — only how the join
	// runs.

	// DisableJoinReorder keeps the FROM-clause join order even when the
	// planner finds an equality-connected order that joins earlier.
	DisableJoinReorder bool
	// DisableDBIndexes makes the executor build transient per-query hash
	// tables instead of using the database's persistent equality indexes.
	DisableDBIndexes bool
	// DisableHashJoin forces nested-loop joins with residual checks — the
	// naive fully-materializing baseline of the paper's pipeline.
	DisableHashJoin bool
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.MaxExactCells <= 0 {
		o.MaxExactCells = 1_000_000
	}
	if o.DNFLimit <= 0 {
		o.DNFLimit = 4096
	}
	if o.CompileCacheSize == 0 {
		o.CompileCacheSize = 1024
	}
	return o
}

// Engine computes measures of certainty. It is not safe for concurrent use;
// create one engine per goroutine (they are cheap). An engine may still
// fan its own sampling work out across Options.Workers goroutines
// internally.
type Engine struct {
	opts  Options
	rng   *rand.Rand
	cache map[realfmla.FormulaID]*compiledEntry
	// shared, when set, is the concurrency-safe compiled-kernel cache the
	// engine resolves formulas through before compiling itself: the
	// measurement pools (MeasureSQL, MeasureBatch) hand every per-item
	// engine the pool owner's cache, so repeated calls and ε-sweeps reuse
	// the immutable compiled kernels instead of recompiling per item.
	shared *kernelCache
	// pool is the persistent crew of parallel-sampling helpers (lazily
	// started when Options.Workers > 1 — see samplePool).
	pool *samplePool
	// itemEngines are the reusable per-candidate engines of this engine's
	// measurement pools (MeasureSQLStream): one per pool worker, reseeded
	// per candidate (resetItem), bit-identical to freshly built ones.
	itemEngines []*Engine

	// Lazy reseeding of pooled item engines. resetItem only marks the
	// reseed; the O(600)-word RNG seeding runs when a draw is actually
	// needed, and the AFPRAS base draw — a pure function of the item seed,
	// and in the common case the item's only draw — is memoized in
	// seedMemo, so repeated queries skip reseeding entirely. memoServed
	// counts memo-served draws so a later full-RNG user replays them and
	// the stream stays bit-identical to a freshly seeded source.
	reseedPending bool
	memoServed    int
	seedMemo      map[int64]int64
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	o := opts.withDefaults()
	return &Engine{opts: o, rng: rand.New(rand.NewSource(o.Seed))}
}

// rand returns the engine RNG, applying a pending item reseed first.
// Draws already served from the base-seed memo (drawBase) are replayed,
// so the stream matches a freshly seeded source exactly.
func (e *Engine) rand() *rand.Rand {
	if e.reseedPending {
		e.rng.Seed(e.opts.Seed)
		for i := 0; i < e.memoServed; i++ {
			e.rng.Int63()
		}
		e.reseedPending = false
		e.memoServed = 0
	}
	return e.rng
}

// drawBase draws the AFPRAS per-invocation base seed. On pooled item
// engines, the first draw after a reset is memoized by item seed —
// rand.Source seeding is deterministic, so the value is a pure function
// of the seed and memoization cannot change results.
func (e *Engine) drawBase() int64 {
	if e.reseedPending && e.memoServed == 0 && e.seedMemo != nil {
		if b, ok := e.seedMemo[e.opts.Seed]; ok {
			e.memoServed = 1
			return b
		}
		b := e.rand().Int63()
		if len(e.seedMemo) < 1<<16 { // bound pathological seed churn
			e.seedMemo[e.opts.Seed] = b
		}
		return b
	}
	return e.rand().Int63()
}

// poolKernels returns the engine's shared kernel cache for measurement
// pools, creating it on first use (nil when caching is disabled). The
// cache lives on the engine, so consecutive MeasureSQL calls reuse it.
func (e *Engine) poolKernels() *kernelCache {
	if e.opts.CompileCacheSize < 0 {
		return nil
	}
	if e.shared == nil {
		e.shared = newKernelCache(e.opts.CompileCacheSize)
	}
	return e.shared
}

// workers resolves Options.Workers to a concrete worker count.
func (e *Engine) workers() int {
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// poolWorkers resolves Options.PoolWorkers to a concrete measurement-pool
// width.
func (o Options) poolWorkers() int {
	if o.PoolWorkers > 0 {
		return o.PoolWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Kernels is a concurrency-safe cache of immutable compiled formula
// kernels that can be shared across engines. Engines themselves are
// single-goroutine, but a multi-user server creates one engine per
// request over the same database and the same workload; handing every
// request engine one shared Kernels (UseKernels) makes repeated queries
// and ε-sweeps compile each candidate constraint once per server instead
// of once per request. Sharing cannot change measured values: kernels
// are immutable and all sampling state is per-engine.
type Kernels = kernelCache

// NewKernels returns a shared kernel cache holding up to capacity
// compiled formulas (0 uses the default of 1024).
func NewKernels(capacity int) *Kernels {
	if capacity <= 0 {
		capacity = 1024
	}
	return newKernelCache(capacity)
}

// UseKernels makes the engine resolve compiled kernels through kc — both
// for its own measurements and for the per-candidate engines of its
// measurement pools. Call it right after New, before any measurement.
func (e *Engine) UseKernels(kc *Kernels) { e.shared = kc }

// kernel is the immutable, preprocessed form of a measured formula:
// reduced to its relevant variables (Section 9) and kernel-compiled for
// repeated evaluation. Kernels carry no mutable scratch, so they are safe
// to share across engines and goroutines (see kernelCache).
type kernel struct {
	source   realfmla.Formula // the formula this kernel was built from
	reduced  realfmla.Formula
	vars     []int // original indices of the reduced variables
	ambient  int   // variable count of the un-reduced formula
	compiled *realfmla.Compiled
}

func newKernel(phi realfmla.Formula) *kernel {
	reduced, vars := realfmla.Reduce(phi)
	return &kernel{
		source:   phi,
		reduced:  reduced,
		vars:     vars,
		ambient:  realfmla.NumVars(phi),
		compiled: realfmla.Compile(reduced),
	}
}

// compiledEntry pairs a (possibly shared) kernel with the engine-local
// sampling scratch. The seq sampler is per-entry scratch for the engine's
// own goroutine; parallel workers bring their own.
type compiledEntry struct {
	*kernel
	// seq is the single-threaded sampling/evaluation scratch; pool holds
	// per-worker scratch for the parallel sampler. Both are lazily built
	// and reused across calls (the engine is single-goroutine, and within
	// one parallel run each pool slot is owned by exactly one worker).
	seq  *asymSampler
	pool []*asymSampler
}

func newCompiledEntry(phi realfmla.Formula) *compiledEntry {
	return &compiledEntry{kernel: newKernel(phi)}
}

// sampler returns the entry's single-threaded sampling scratch, creating
// it on first use.
func (ent *compiledEntry) sampler() *asymSampler {
	if ent.seq == nil {
		ent.seq = newAsymSampler(ent.compiled, len(ent.vars))
	}
	return ent.seq
}

// samplerPool returns at least `workers` reusable sampler slots. Called
// from the coordinating goroutine before workers start, so the grown
// slice is visible to every worker.
func (ent *compiledEntry) samplerPool(workers int) []*asymSampler {
	for len(ent.pool) < workers {
		ent.pool = append(ent.pool, newAsymSampler(ent.compiled, len(ent.vars)))
	}
	return ent.pool
}

// compiledFor returns the preprocessed form of phi, from the engine's
// cache when enabled, resolving the immutable kernel through the shared
// pool cache when the engine has one. The cached Compiled is immutable
// and shared; all evaluation goes through per-goroutine Evaluators.
func (e *Engine) compiledFor(phi realfmla.Formula) *compiledEntry {
	if e.opts.CompileCacheSize < 0 {
		return newCompiledEntry(phi)
	}
	key := realfmla.Fingerprint(phi)
	// The fingerprint is not cryptographic: confirm the hit syntactically,
	// so a collision costs a recompile instead of a wrong measure.
	if ent, ok := e.cache[key]; ok && realfmla.Equal(phi, ent.source) {
		return ent
	}
	var ent *compiledEntry
	if e.shared != nil {
		ent = &compiledEntry{kernel: e.shared.get(key, phi)}
	} else {
		ent = newCompiledEntry(phi)
	}
	if e.cache == nil {
		e.cache = make(map[realfmla.FormulaID]*compiledEntry)
	} else if len(e.cache) >= e.opts.CompileCacheSize {
		for k := range e.cache { // full: evict one arbitrary entry
			delete(e.cache, k)
			break
		}
	}
	e.cache[key] = ent
	return ent
}

// Result reports a computed or approximated measure.
type Result struct {
	// Value is the (approximate) measure in [0,1].
	Value float64
	// Rat is the exact rational value when the method is exact over the
	// rationals (cell enumeration or trivial); nil otherwise.
	Rat *big.Rat
	// Exact reports whether Value is exact (up to float rounding for the
	// sector method) rather than a statistical estimate.
	Exact bool
	// Method is the algorithm that produced the value.
	Method Method
	// Samples is the number of random samples drawn (0 for exact methods).
	Samples int
	// K is the number of numerical nulls of the database (ambient
	// dimension); RelevantK is the number that actually affect the query
	// (the paper's Section 9 optimization).
	K, RelevantK int
	// SamplesDrawn and Rounds are set only by the adaptive top-k race
	// (Method afpras-race, or an exact/trivial method resolved inside a
	// race): the number of direction samples this candidate actually drew
	// — a prefix of the fixed path's m-sample budget — and the number of
	// race rounds it participated in. Zero on every non-adaptive path, so
	// fixed-budget results are byte-identical to previous releases.
	SamplesDrawn int
	Rounds       int
}

// Measure computes μ(q, D, args): it translates the input into a real
// formula (Prop 5.3) and dispatches to the best applicable algorithm:
// exact enumeration for order formulas, exact sector sweep for
// low-dimensional linear formulas, and the additive-error sampling scheme
// otherwise. eps and delta are the additive error and failure probability
// used when sampling is needed.
func (e *Engine) Measure(q *fo.Query, d *db.Database, args []value.Value, eps, delta float64) (Result, error) {
	res, err := translate.Query(q, d, args)
	if err != nil {
		return Result{}, err
	}
	out, err := e.MeasureFormula(res.Phi, eps, delta)
	if err != nil {
		return Result{}, err
	}
	out.K = res.K()
	return out, nil
}

// MeasureFormula computes ν(φ) for a quantifier-free real formula φ,
// dispatching as Measure does.
func (e *Engine) MeasureFormula(phi realfmla.Formula, eps, delta float64) (Result, error) {
	ent := e.compiledFor(phi)
	n := len(ent.vars)

	if n == 0 && !e.opts.ForceSampling {
		return trivialResult(realfmla.Eval(ent.reduced, nil), ent.ambient), nil
	}
	if !e.opts.DisableExact {
		if r, ok, err := e.exactOrder(ent); err != nil {
			return Result{}, err
		} else if ok {
			r.K = ent.ambient
			r.RelevantK = n
			return r, nil
		}
		if r, ok := e.exactSector(ent.reduced); ok {
			r.K = ent.ambient
			r.RelevantK = n
			return r, nil
		}
	}
	if e.opts.PreferFPRAS && realfmla.IsLinear(ent.reduced) {
		r, err := e.FPRAS(phi, eps)
		if err == nil {
			return r, nil
		}
		// DNF blowup or degenerate geometry: fall through to the AFPRAS.
	}
	r, err := e.additiveApprox(ent, eps, delta)
	if err != nil {
		return Result{}, err
	}
	return r, nil
}

func trivialResult(truth bool, k int) Result {
	v := 0.0
	rat := big.NewRat(0, 1)
	if truth {
		v = 1
		rat = big.NewRat(1, 1)
	}
	return Result{Value: v, Rat: rat, Exact: true, Method: MethodTrivial, K: k}
}

// ValidateEps checks the additive/multiplicative error parameter shared
// by every sampling entry point (FPRAS, AFPRAS, MeasureBatch, MeasureSQL
// and the server's request validation): eps must lie in (0,1]. The
// negated comparison also rejects NaN.
func ValidateEps(eps float64) error {
	if !(eps > 0 && eps <= 1) {
		return fmt.Errorf("core: eps must be in (0,1], got %g", eps)
	}
	return nil
}

// ValidateEpsDelta checks a full (eps, delta) sampling contract: eps in
// (0,1] and delta in (0,1). It is the one validator behind FPRAS,
// MeasureBatch, MeasureSQL/MeasureSQLStream, MeasureTopK and the server,
// so every entry point rejects the same inputs with the same message.
func ValidateEpsDelta(eps, delta float64) error {
	if err := ValidateEps(eps); err != nil {
		return err
	}
	if !(delta > 0 && delta < 1) {
		return fmt.Errorf("core: delta must be in (0,1), got %g", delta)
	}
	return nil
}

// checkEpsDelta is the internal spelling of ValidateEpsDelta.
func checkEpsDelta(eps, delta float64) error { return ValidateEpsDelta(eps, delta) }
