package db

// Copy-on-write snapshots: Snapshot publishes an immutable view of the
// database that concurrent readers keep using while later inserts land.
//
// Everything the store holds is append-only — column arrays, the string
// dictionary, equality-index group slices, the sorted inventory slices —
// so a snapshot is just a bundle of slice headers cut at the current
// lengths plus references to the current index and inventory maps. The
// writer never mutates memory a snapshot can reach:
//
//   - appends to shared backing arrays only write past every published
//     length, which no reader bounded by its own headers can access;
//   - map-shaped state (equality-index groups, the dictionary's code map,
//     numNullIndex) is cloned copy-on-write before the writer's first
//     mutation after publishing — sharedIx / dict.shared / invShared mark
//     what a snapshot still references;
//   - rebuilt inventory slices are always freshly allocated.
//
// Snapshot itself is RCU-shaped: the published view lives in an atomic
// pointer, the fast path is one atomic load plus a version compare, and
// the slow path (first Snapshot after a commit) materializes a fresh view
// under the writer lock and swaps it in. Old snapshots stay valid for as
// long as anyone holds them; abandoned ones are garbage collected.

// Snapshot returns an immutable view of the database's current contents.
// The view is itself a *Database — every read accessor works on it and
// Insert is rejected — so planners, executors and engines run on it
// unchanged. Any number of goroutines may read one snapshot (or many
// different ones) concurrently with a writer inserting and publishing new
// versions; a reader's snapshot never changes underneath it.
//
// Calling Snapshot on an unchanged database returns the same view (one
// atomic load); the first call after a commit materializes a new view,
// which costs O(#tables + #columns + #cached indexes) header copies —
// never a scan — plus, on the next insert, a copy-on-write clone of each
// index map the snapshot shares. Snapshot on a snapshot returns itself.
func (d *Database) Snapshot() *Database {
	if d.frozen {
		return d
	}
	if s := d.snap.Load(); s != nil && s.version.Load() == d.version.Load() {
		return s
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s := d.snap.Load(); s != nil && s.version.Load() == d.version.Load() {
		return s
	}
	s := d.freezeLocked()
	d.snap.Store(s)
	return s
}

// freezeLocked materializes the frozen view of the current state and
// marks the shared mutable structures for copy-on-write. Callers hold
// d.mu.
func (d *Database) freezeLocked() *Database {
	// Queries need the null-variable indexing; building it here (still
	// incremental) keeps the snapshot allocation-free on the read side.
	d.buildInventories()
	s := &Database{
		schema:       d.schema,
		tables:       make(map[string]*table, len(d.tables)),
		nextBaseNull: d.nextBaseNull,
		nextNumNull:  d.nextNumNull,
		frozen:       true,
		origin:       d,

		invValid:     true,
		baseNulls:    d.baseNulls,
		numNulls:     d.numNulls,
		numNullIndex: d.numNullIndex,
		numConsts:    d.numConsts,

		baseConstsLen: d.baseConstsLen,
		baseConsts:    d.baseConsts,
	}
	s.version.Store(d.version.Load())
	s.dict = d.dict.share()
	for rel, tb := range d.tables {
		s.tables[rel] = tb.view()
	}
	if len(d.indexes) > 0 {
		s.indexes = make(map[indexKey]*EqIndex, len(d.indexes))
		if d.sharedIx == nil {
			d.sharedIx = make(map[indexKey]bool, len(d.indexes))
		}
		for k, ix := range d.indexes {
			s.indexes[k] = ix
			d.sharedIx[k] = true
		}
	}
	d.invShared = true
	return s
}
