package schema

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func products() *Relation {
	return MustRelation("Products",
		Column{"id", Base}, Column{"seg", Base},
		Column{"rrp", Num}, Column{"dis", Num})
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation(""); err == nil {
		t.Error("empty relation name accepted")
	}
	if _, err := NewRelation("R", Column{"", Base}); err == nil {
		t.Error("unnamed column accepted")
	}
	if _, err := NewRelation("R", Column{"a", Base}, Column{"a", Num}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewRelation("R", Column{"a", Base}, Column{"b", Num}); err != nil {
		t.Errorf("valid relation rejected: %v", err)
	}
}

func TestColumnIndex(t *testing.T) {
	p := products()
	if p.ColumnIndex("rrp") != 2 {
		t.Errorf("ColumnIndex(rrp) = %d", p.ColumnIndex("rrp"))
	}
	if p.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
	if p.Arity() != 4 {
		t.Errorf("arity = %d", p.Arity())
	}
}

func TestCheckTuple(t *testing.T) {
	p := products()
	good := value.Tuple{value.Base("p1"), value.NullBase(0), value.Num(10), value.NullNum(0)}
	if err := p.CheckTuple(good); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
	if err := p.CheckTuple(good[:3]); err == nil {
		t.Error("wrong arity accepted")
	}
	bad := value.Tuple{value.Num(1), value.Base("s"), value.Num(10), value.Num(0.5)}
	if err := p.CheckTuple(bad); err == nil {
		t.Error("num value in base column accepted")
	}
	bad2 := value.Tuple{value.Base("p1"), value.Base("s"), value.NullBase(0), value.Num(0.5)}
	if err := p.CheckTuple(bad2); err == nil {
		t.Error("base null in num column accepted")
	}
}

func TestSchemaLookupAndOrdering(t *testing.T) {
	s := MustNew(
		MustRelation("B", Column{"x", Num}),
		MustRelation("A", Column{"y", Base}),
	)
	if s.Relation("A") == nil || s.Relation("B") == nil {
		t.Fatal("lookup failed")
	}
	if s.Relation("C") != nil {
		t.Error("phantom relation")
	}
	rels := s.Relations()
	if len(rels) != 2 || rels[0].Name != "A" || rels[1].Name != "B" {
		t.Errorf("Relations not sorted: %v", rels)
	}
}

func TestSchemaDuplicate(t *testing.T) {
	_, err := New(MustRelation("R", Column{"a", Base}), MustRelation("R", Column{"b", Num}))
	if err == nil {
		t.Error("duplicate relation accepted")
	}
}

func TestStringRendering(t *testing.T) {
	p := products()
	want := "Products(id:base, seg:base, rrp:num, dis:num)"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	s := MustNew(p, MustRelation("Excluded", Column{"id", Base}))
	if out := s.String(); !strings.Contains(out, "Excluded(id:base)") || !strings.Contains(out, want) {
		t.Errorf("schema String = %q", out)
	}
}
