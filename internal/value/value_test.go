package value

import (
	"testing"
	"testing/quick"
)

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		null bool
		num  bool
	}{
		{Base("a"), BaseConst, false, false},
		{Num(3.5), NumConst, false, true},
		{NullBase(7), BaseNull, true, false},
		{NullNum(2), NumNull, true, true},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.IsNull() != c.null {
			t.Errorf("%v: IsNull = %v, want %v", c.v, c.v.IsNull(), c.null)
		}
		if c.v.IsNumeric() != c.num {
			t.Errorf("%v: IsNumeric = %v, want %v", c.v, c.v.IsNumeric(), c.num)
		}
		if c.v.IsBase() == c.num {
			t.Errorf("%v: IsBase and IsNumeric agree", c.v)
		}
	}
}

func TestPayloads(t *testing.T) {
	if Base("xyz").Str() != "xyz" {
		t.Error("Base payload lost")
	}
	if Num(2.25).Float() != 2.25 {
		t.Error("Num payload lost")
	}
	if NullBase(4).NullID() != 4 || NullNum(9).NullID() != 9 {
		t.Error("null ID lost")
	}
}

func TestPayloadPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Str on num", func() { Num(1).Str() })
	mustPanic("Float on base", func() { Base("x").Float() })
	mustPanic("NullID on const", func() { Base("x").NullID() })
}

func TestValueEqualityIsSyntactic(t *testing.T) {
	if NullBase(1) == NullBase(2) {
		t.Error("distinct base nulls compare equal")
	}
	if NullBase(1) != NullBase(1) {
		t.Error("same null compares unequal")
	}
	if NullBase(1) == NullNum(1) {
		t.Error("base null equals numerical null with same ID")
	}
	if Base("1") == Num(1) {
		t.Error("base constant equals numerical constant")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[Value]string{
		Base("seg1"): "seg1",
		Num(10):      "10",
		Num(0.7):     "0.7",
		NullBase(3):  "⊥3",
		NullNum(0):   "⊤0",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
	tup := Tuple{Base("a"), Num(1), NullNum(2)}
	if got := tup.String(); got != "(a, 1, ⊤2)" {
		t.Errorf("tuple String = %q", got)
	}
}

func TestTupleCloneIndependence(t *testing.T) {
	tup := Tuple{Base("a"), Num(1)}
	c := tup.Clone()
	c[0] = Base("b")
	if tup[0].Str() != "a" {
		t.Error("Clone aliases the original")
	}
	if !tup.Equal(Tuple{Base("a"), Num(1)}) {
		t.Error("Equal broken")
	}
	if tup.Equal(c) {
		t.Error("Equal ignores modification")
	}
	if tup.Equal(Tuple{Base("a")}) {
		t.Error("Equal ignores length")
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Keys must distinguish tuples that differ in kind, payload or shape.
	distinct := []Tuple{
		{Base("a"), Base("b")},
		{Base("ab")},
		{Base("a"), Base("b"), Base("")},
		{Num(1)},
		{Num(2)},
		{NullBase(1)},
		{NullNum(1)},
		{Base("1")},
	}
	seen := map[string]int{}
	for i, tup := range distinct {
		k := tup.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("tuples %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
}

func TestTupleKeyEqualityProperty(t *testing.T) {
	// Two tuples built from the same data have the same key.
	f := func(ss []string, fs []float64) bool {
		mk := func() Tuple {
			var tup Tuple
			for _, s := range ss {
				tup = append(tup, Base(s))
			}
			for _, x := range fs {
				tup = append(tup, Num(x))
			}
			return tup
		}
		return mk().Key() == mk().Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
