// Package analysis is the repo's determinism-invariant lint suite: five
// static analyzers that move the contract the runtime parity suites test
// dynamically — bit-identical (Float64bits-equal) results across worker
// counts, shard counts, failover, and crash recovery — into a CI gate
// that fires the moment a violation is committed.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic) but is built entirely on the standard
// library (go/ast, go/types, and the "source" importer), because the
// build environment is offline and x/tools is not vendored. Should
// x/tools become available, each analyzer's Run function ports directly.
//
// Analyzers:
//
//   - detrand:  no wall clock or unseeded randomness in deterministic
//     packages (time.Now, global math/rand, rand.New with a source that
//     is not seed-derived).
//   - maporder: no map iteration feeding order-sensitive sinks (slice
//     appends, channel sends, encoder writes) without an intervening
//     sort.
//   - floateq:  no raw ==/!=/switch on float64 operands outside the
//     allowlisted comparison helpers — use math.Float64bits or the eps
//     helpers.
//   - ctxpoll:  derivation/candidate streaming loops in exec and core
//     must poll Options.Interrupt / ctx.Done (the every-4k-derivations
//     rule).
//   - errdrop:  no discarded error returns from WAL
//     append/sync/checkpoint methods or store insert paths — a dropped
//     WAL error bypasses the degraded-mode trip.
//
// Every analyzer honors a per-line escape hatch:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself a
// diagnostic. A directive suppresses matching diagnostics on its own
// line and, when the comment stands alone, on the line below it.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker. It deliberately mirrors
// x/tools' analysis.Analyzer so the Run functions stay portable.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an analyzer, mirroring
// x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer registry in reporting order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, FloatEq, CtxPoll, ErrDrop}
}

// Run applies analyzers to one loaded package and returns the surviving
// diagnostics: //lint:allow directives with a reason suppress matching
// diagnostics; malformed or unknown-name directives become diagnostics
// themselves. Results are sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	dirs, dirDiags := directives(pkg.Fset, pkg.Files)
	diags = filterAllowed(diags, dirs)
	diags = append(diags, dirDiags...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// pathHasAny reports whether the package import path ends in one of the
// given segment suffixes ("internal/core" matches "repro/internal/core";
// fixture packages under testdata use the same paths).
func pathHasAny(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
