// Package wire is the floateq gating negative: the codec compares
// floats when round-tripping, and that is its business — floateq only
// gates the deterministic packages.
package wire

func RoundTripEqual(a, b float64) bool {
	return a == b
}
