// Package mc provides the Monte-Carlo machinery shared by the approximation
// schemes of Sections 7 and 8: uniform sampling from spheres and balls (the
// Gaussian-normalization method of Blum–Hopcroft–Kannan cited by the
// paper), Hoeffding/Chernoff sample-size calculators, and estimator
// utilities including median-of-means confidence amplification.
package mc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// NewRNG returns a seeded deterministic random source.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SampleSphere returns a uniformly random point on the unit (n-1)-sphere:
// n independent standard Gaussians scaled to norm 1.
func SampleSphere(rng *rand.Rand, n int) []float64 {
	if n <= 0 {
		return nil
	}
	x := make([]float64, n)
	SampleSphereInto(rng, x)
	return x
}

// SampleSphereInto fills buf with a uniformly random point on the unit
// (len(buf)-1)-sphere without allocating — the reusable-buffer variant of
// SampleSphere for sampling hot loops.
func SampleSphereInto(rng *rand.Rand, buf []float64) {
	if len(buf) == 0 {
		return
	}
	for {
		FillNormal(rng, buf)
		s := 0.0
		for _, v := range buf {
			s += v * v
		}
		if s == 0 {
			continue // astronomically unlikely; resample
		}
		inv := 1 / math.Sqrt(s)
		for i := range buf {
			buf[i] *= inv
		}
		return
	}
}

// FillNormal fills buf with independent standard Gaussian draws from rng:
// an unnormalized direction sample (asymptotic truth along a ray is
// invariant under positive scaling, so the AFPRAS can skip the
// normalization of SampleSphereInto).
func FillNormal(rng *rand.Rand, buf []float64) {
	for i := range buf {
		buf[i] = rng.NormFloat64()
	}
}

// SplitMix64 is a tiny rand.Source64 (Vigna's SplitMix64 generator) with
// O(1) seeding. math/rand's default source re-initializes a ~600-word
// state table on every Seed, which dominates samplers that reseed once
// per work chunk; SplitMix64 reseeds by assigning one word.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a SplitMix64 source seeded with seed.
func NewSplitMix64(seed int64) *SplitMix64 {
	return &SplitMix64{state: uint64(seed)}
}

// Seed resets the stream. Identical seeds give identical streams.
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// Uint64 returns the next value of the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// Int63 returns a non-negative 63-bit value, as rand.Source requires.
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// DeriveSeed derives the seed of an independent substream from a base seed
// and a stream index, mixing both through the SplitMix64 finalizer. Chunked
// samplers hand every fixed-size chunk of work its own derived seed, making
// results bit-identical for a given base seed no matter how chunks are
// scheduled across workers — and unlike additive offsets, the mixing keeps
// nearby stream indices statistically independent.
func DeriveSeed(seed int64, stream int64) int64 {
	z := uint64(seed) ^ (uint64(stream)+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// SampleBall returns a uniformly random point in the unit n-ball:
// a uniform sphere direction scaled by U^{1/n}.
func SampleBall(rng *rand.Rand, n int) []float64 {
	x := SampleSphere(rng, n)
	r := math.Pow(rng.Float64(), 1/float64(n))
	for i := range x {
		x[i] *= r
	}
	return x
}

// HoeffdingSamples returns the number of samples of a [0,1]-valued random
// variable needed so that the empirical mean is within eps of the true mean
// with probability at least 1-delta:  m ≥ ln(2/δ) / (2ε²).
// With delta = 1/4 this is the paper's m ≥ ε⁻² regime (up to the constant).
func HoeffdingSamples(eps, delta float64) (int, error) {
	if eps <= 0 || eps > 1 {
		return 0, fmt.Errorf("mc: eps must be in (0,1], got %g", eps)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("mc: delta must be in (0,1), got %g", delta)
	}
	m := math.Log(2/delta) / (2 * eps * eps)
	return int(math.Ceil(m)), nil
}

// PaperSamples is the sample count the paper's AFPRAS analysis uses for
// confidence 3/4: m ≥ ε⁻².
func PaperSamples(eps float64) (int, error) {
	if eps <= 0 || eps > 1 {
		return 0, fmt.Errorf("mc: eps must be in (0,1], got %g", eps)
	}
	return int(math.Ceil(1 / (eps * eps))), nil
}

// Mean is a streaming mean accumulator using Kahan-compensated summation:
// the running compensation term recovers the low-order bits lost when
// adding each observation to the sum, so long streams of small values do
// not drift.
type Mean struct {
	n   int
	sum float64
	c   float64 // Kahan compensation
}

// Add accumulates one observation.
func (m *Mean) Add(x float64) {
	y := x - m.c
	t := m.sum + y
	m.c = (t - m.sum) - y
	m.sum = t
	m.n++
}

// N returns the number of observations.
func (m *Mean) N() int { return m.n }

// Value returns the current mean (0 for no observations).
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// MedianOfMeans amplifies an estimator's confidence: it runs the estimator
// k times and returns the median of the results. If each run is within the
// target error with probability ≥ 3/4, the median is within the error with
// probability ≥ 1 - exp(-k/8), turning a constant-confidence scheme into a
// (1-δ)-confidence scheme with k = O(log 1/δ) repetitions.
func MedianOfMeans(k int, estimate func() float64) float64 {
	if k <= 0 {
		k = 1
	}
	vals := make([]float64, k)
	for i := range vals {
		vals[i] = estimate()
	}
	sort.Float64s(vals)
	if k%2 == 1 {
		return vals[k/2]
	}
	return (vals[k/2-1] + vals[k/2]) / 2
}

// RepetitionsForConfidence returns the number of median-of-means
// repetitions needed to boost a 3/4-confidence estimator to confidence
// 1-delta: k ≥ 8·ln(1/δ) (odd, at least 1).
func RepetitionsForConfidence(delta float64) int {
	if delta >= 0.25 {
		return 1
	}
	k := int(math.Ceil(8 * math.Log(1/delta)))
	if k%2 == 0 {
		k++
	}
	return k
}

// Norm returns the Euclidean norm of a vector.
func Norm(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mc: Dot on lengths %d and %d", len(a), len(b)))
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
