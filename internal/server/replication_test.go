package server

// Replication endpoint tests: the checkpoint bootstrap stream (framing,
// CRCs, terminator), the long-poll log tail (drain, wake-on-commit,
// heartbeats, 410 on truncation), and the degraded-primary guarantee —
// a primary that can no longer write keeps shipping its durable prefix,
// stickily read-only, so replicas converge and can take over.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/value"
	"repro/internal/wal"
	"repro/internal/wire"
)

// newReplicationServer builds a durable primary over a fresh store
// seeded with the shared sales fixture.
func newReplicationServer(t testing.TB, ffs wal.FS) (*wal.Store, *client.Client, *httptest.Server) {
	t.Helper()
	store, err := wal.Open(t.TempDir(), wal.Options{
		FS:   ffs,
		Seed: func() (*db.Database, error) { return testDB().Clone(), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	_, c, hs := newTestServer(t, Config{
		DB:          store.DB(),
		Durable:     store,
		Replication: store,
		Engine:      core.Options{Seed: 1},
		// Fast heartbeats so long-poll tests do not sit idle.
		ReplHeartbeat: 50 * time.Millisecond,
	})
	return store, c, hs
}

// marketTuple is a small valid Market(seg, rrp, dis) batch.
func marketTuple(i int) []value.Tuple {
	return []value.Tuple{{value.Base("segR"), value.Num(float64(i)), value.Num(0.3)}}
}

func TestReplCheckpointStream(t *testing.T) {
	store, c, hs := newReplicationServer(t, nil)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Insert(ctx, "Market", marketTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(hs.URL + "/v1/replication/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint endpoint: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr wire.ReplCheckpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Seq != 3 || hdr.Files == 0 {
		t.Fatalf("header %+v, want seq 3 with files", hdr)
	}
	for i := 0; i < hdr.Files; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended at file %d of %d", i, hdr.Files)
		}
		var f wire.ReplFile
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatal(err)
		}
		if f.Name == "" || len(f.Data) == 0 {
			t.Fatalf("file line %d: %+v", i, f)
		}
		if f.CRC != wal.Checksum(hdr.Seq, f.Data) {
			t.Fatalf("file %s: CRC %d does not verify", f.Name, f.CRC)
		}
	}
	if !sc.Scan() {
		t.Fatal("stream ended before the terminator")
	}
	var done wire.ReplFile
	if err := json.Unmarshal(sc.Bytes(), &done); err != nil || !done.Done {
		t.Fatalf("terminator line %q, err %v", sc.Text(), err)
	}
}

// tailLines opens the log tail and returns a line scanner plus a
// closer.
func tailLines(t testing.TB, hs *httptest.Server, from string) (*bufio.Scanner, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, hs.URL+"/v1/replication/log?from="+from, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("log endpoint: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	return sc, func() { resp.Body.Close() }
}

func TestReplLogTailDrainsAndWakes(t *testing.T) {
	store, c, hs := newReplicationServer(t, nil)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Insert(ctx, "Market", marketTuple(i)); err != nil {
			t.Fatal(err)
		}
	}

	sc, stop := tailLines(t, hs, "1")
	defer stop()
	next := func() wire.ReplRecord {
		t.Helper()
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var rec wire.ReplRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatal(err)
			}
			return rec
		}
		t.Fatalf("stream ended: %v", sc.Err())
		panic("unreachable")
	}
	// Drain the backlog: records 1..3, CRC-verified, then a heartbeat
	// announcing the frontier.
	for want := uint64(1); want <= 3; want++ {
		rec := next()
		if rec.Heartbeat || rec.Seq != want {
			t.Fatalf("got %+v, want record %d", rec, want)
		}
		if wal.Checksum(rec.Seq, rec.Payload) != rec.CRC {
			t.Fatalf("record %d: CRC does not verify", rec.Seq)
		}
		if _, err := wal.DecodeBatch(rec.Payload); err != nil {
			t.Fatalf("record %d: %v", rec.Seq, err)
		}
	}
	hb := next()
	if !hb.Heartbeat || hb.PrimarySeq != 3 {
		t.Fatalf("got %+v, want heartbeat at frontier 3", hb)
	}

	// A commit while the tail blocks wakes it: the new record arrives
	// without waiting out the heartbeat period.
	if _, err := c.Insert(ctx, "Market", marketTuple(9)); err != nil {
		t.Fatal(err)
	}
	for {
		rec := next()
		if rec.Heartbeat {
			continue
		}
		if rec.Seq != 4 || rec.PrimarySeq != 4 {
			t.Fatalf("woke with %+v, want record 4", rec)
		}
		break
	}
	_ = store
}

func TestReplLogTruncatedAndBadFrom(t *testing.T) {
	store, c, hs := newReplicationServer(t, nil)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.Insert(ctx, "Market", marketTuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Truncated cursor: structured 410 telling the replica to bootstrap.
	resp, err := hs.Client().Get(hs.URL + "/v1/replication/log?from=1")
	if err != nil {
		t.Fatal(err)
	}
	var er wire.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone || er.Code != wire.CodeLogTruncated {
		t.Fatalf("from=1 after checkpoint: HTTP %d code %q, want 410 %s", resp.StatusCode, er.Code, wire.CodeLogTruncated)
	}

	// Malformed cursor: 400.
	resp, err = hs.Client().Get(hs.URL + "/v1/replication/log?from=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from=banana: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestDegradedPrimaryKeepsServingReplication is the failover story's
// linchpin: a primary whose WAL trips turns stickily read-only across
// requests, yet its replication log keeps serving the durable prefix —
// so a replica converges on everything the primary ever acknowledged and
// can take over the read load.
func TestDegradedPrimaryKeepsServingReplication(t *testing.T) {
	ffs := &wal.FaultFS{Inner: wal.OSFS{}}
	store, c, hs := newReplicationServer(t, ffs)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Insert(ctx, "Market", marketTuple(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Trip the WAL on the next append: the insert fails and the store
	// degrades.
	ffs.FailWriteAt = ffs.Writes() + 1
	var se *client.ServerError
	if _, err := c.Insert(ctx, "Market", marketTuple(99)); !errors.As(err, &se) || se.Code != wire.CodeDegraded {
		t.Fatalf("faulted insert: %v, want degraded", err)
	}
	// Sticky across requests: every further insert is rejected up front.
	for i := 0; i < 3; i++ {
		if _, err := c.Insert(ctx, "Market", marketTuple(100+i)); !errors.As(err, &se) || se.Code != wire.CodeDegraded {
			t.Fatalf("insert %d while degraded: %v, want degraded", i, err)
		}
	}

	// The replication log still serves the durable prefix: exactly the 3
	// acknowledged records, correctly checksummed, then a heartbeat at the
	// durable frontier.
	sc, stop := tailLines(t, hs, "1")
	defer stop()
	var got []uint64
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec wire.ReplRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Heartbeat {
			break
		}
		if wal.Checksum(rec.Seq, rec.Payload) != rec.CRC {
			t.Fatalf("record %d: CRC does not verify", rec.Seq)
		}
		got = append(got, rec.Seq)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("degraded primary shipped %v, want the durable prefix [1 2 3]", got)
	}

	// And the checkpoint endpoint still answers too (bootstrap during the
	// outage).
	resp, err := hs.Client().Get(hs.URL + "/v1/replication/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint while degraded: HTTP %d", resp.StatusCode)
	}
	_ = store
}

// TestReplicaModeServer checks the replica-facing surface of the server:
// inserts answer 403 not-primary, /v1/info carries role/lag/seq, and
// /healthz reports the replica role.
func TestReplicaModeServer(t *testing.T) {
	d := testDB()
	rs := &fakeReplicaStatus{primary: "http://primary:8080", applied: 7, primarySeq: 9}
	_, c, hs := newTestServer(t, Config{
		Source:  func() *db.Database { return d },
		Replica: rs,
		Engine:  core.Options{Seed: 1},
	})
	ctx := context.Background()

	var se *client.ServerError
	if _, err := c.Insert(ctx, "Market", marketTuple(1)); !errors.As(err, &se) ||
		se.Status != http.StatusForbidden || se.Code != wire.CodeNotPrimary {
		t.Fatalf("insert on replica: %v, want 403 %s", err, wire.CodeNotPrimary)
	}

	info, err := c.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r := info.Replication
	if r == nil || r.Role != "replica" || r.LastAppliedSeq != 7 || r.PrimarySeq != 9 || r.ReplicaLag != 2 {
		t.Fatalf("info replication %+v, want replica 7/9 lag 2", r)
	}
	if !info.ReadOnly {
		t.Fatal("replica info does not report read-only")
	}

	resp, err := hs.Client().Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health wire.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Role != "replica" || health.LastAppliedSeq != 7 || health.ReplicaLag == nil || *health.ReplicaLag != 2 {
		t.Fatalf("healthz %+v, want replica seq 7 lag 2", health)
	}

	// Reads flow normally.
	res, err := c.MeasureSQL(ctx, testWorkloads[0], 0.2, 0.3)
	if err != nil || res.Count == 0 {
		t.Fatalf("measure on replica: %v (count %d)", err, res.Count)
	}
}

type fakeReplicaStatus struct {
	primary    string
	applied    uint64
	primarySeq uint64
}

func (f *fakeReplicaStatus) LastAppliedSeq() uint64 { return f.applied }
func (f *fakeReplicaStatus) PrimarySeq() uint64     { return f.primarySeq }
func (f *fakeReplicaStatus) Primary() string        { return f.primary }
