// Package core is the floateq positive fixture.
package core

import "math"

// variableCompare is the bug class: raw equality between two computed
// floats — flagged.
func variableCompare(a, b float64) bool {
	return a == b // want `raw float ==`
}

func variableNotEqual(a, b float64) bool {
	return a != b // want `raw float !=`
}

func float32Compare(a, b float32) bool {
	return a == b // want `raw float ==`
}

// constGuard compares against a literal: deliberate exact arithmetic —
// clean.
func constGuard(b float64) bool {
	if b == 0 {
		return true
	}
	return b != 1.5
}

// bothConst folds at compile time — clean.
func bothConst() bool {
	return 1.0 == 2.0/2.0
}

// bitsCompare is the steered-toward fix — clean.
func bitsCompare(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// float64Eq is an allowlisted helper name: the one place allowed to
// state the raw-equality rule — clean.
func float64Eq(a, b float64) bool {
	return a == b
}

// intCompare involves no floats — clean.
func intCompare(a, b int) bool {
	return a == b
}

// switchTag switches on a computed float — flagged.
func switchTag(v float64) int {
	switch v { // want `switch on a float tag`
	case 1.0:
		return 1
	default:
		return 0
	}
}

// switchBits is the fix — clean.
func switchBits(v float64) int {
	switch math.Float64bits(v) {
	case math.Float64bits(1.0):
		return 1
	default:
		return 0
	}
}

// allowedCompare uses the escape hatch — clean.
func allowedCompare(a, b float64) bool {
	return a == b //lint:allow floateq inputs are integral counters stored as floats
}

// missingReason keeps both diagnostics.
func missingReason(a, b float64) bool {
	return a == b //lint:allow floateq // want `//lint:allow floateq is missing a reason` `raw float ==`
}
