package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Each analyzer runs against its own fixture universe under
// testdata/<name>/src: a positive package full of seeded violations
// (verified line by line through // want annotations, including the
// //lint:allow escape hatch and its missing-reason failure mode) and a
// negative package proving the path gate.

func TestDetRand(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "detrand"), analysis.DetRand,
		"repro/internal/core", "repro/internal/datagen")
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "maporder"), analysis.MapOrder,
		"repro/internal/server", "repro/internal/client")
}

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "floateq"), analysis.FloatEq,
		"repro/internal/core", "repro/internal/wire")
}

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "ctxpoll"), analysis.CtxPoll,
		"repro/internal/exec", "repro/internal/replica")
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "errdrop"), analysis.ErrDrop,
		"repro/internal/server")
}
