// Package replica is the ctxpoll gating negative: outside exec/core the
// catchup loops manage their own cancellation via the connection, so
// this pull loop is not checked.
package replica

type stream struct{ n int }

func (s *stream) Next() (int, bool) {
	s.n++
	return s.n, s.n <= 10
}

func Drain(s *stream) int {
	total := 0
	for {
		v, ok := s.Next()
		if !ok {
			return total
		}
		total += v
	}
}
