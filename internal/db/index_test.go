package db

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func indexTestDB(t *testing.T) *Database {
	t.Helper()
	s := schema.MustNew(schema.MustRelation("R",
		schema.Column{Name: "k", Type: schema.Base},
		schema.Column{Name: "x", Type: schema.Num}))
	d := New(s)
	d.MustInsert("R", value.Base("a"), value.Num(1))
	d.MustInsert("R", value.Base("b"), value.Num(2))
	d.MustInsert("R", value.Base("a"), value.Num(3))
	d.MustInsert("R", value.NullBase(0), value.Num(4))
	return d
}

func ords(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

func TestIndexGroupsAndNullIdentity(t *testing.T) {
	d := indexTestDB(t)
	ix := d.Index("R", 0)
	if got := ords(ix.Lookup(d, value.Base("a"))); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("a → %v, want [0 2] in insertion order", got)
	}
	if got := ords(ix.Lookup(d, value.Base("b"))); len(got) != 1 || got[0] != 1 {
		t.Errorf("b → %v", got)
	}
	// A marked null indexes only with itself (Prop 5.2's regime).
	if got := ords(ix.Lookup(d, value.NullBase(0))); len(got) != 1 || got[0] != 3 {
		t.Errorf("⊥0 → %v", got)
	}
	if got := ix.Lookup(d, value.NullBase(1)); got != nil {
		t.Errorf("⊥1 → %v, want no entry", got)
	}
	if got := ix.Lookup(d, value.Base("zzz")); got != nil {
		t.Errorf("unseen constant → %v, want no entry", got)
	}
	if ix.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3 (a, b, ⊥0)", ix.Distinct())
	}
	// The code-level probe the executor uses agrees with Lookup.
	code, ok := d.LookupBaseCode("a")
	if !ok {
		t.Fatal("interned constant not found")
	}
	if got := ords(ix.Base(code)); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Base(code(a)) → %v", got)
	}
	// Cached on second call.
	if d.Index("R", 0) != ix {
		t.Error("index rebuilt on second call")
	}
}

func TestNumericIndex(t *testing.T) {
	s := schema.MustNew(schema.MustRelation("R",
		schema.Column{Name: "x", Type: schema.Num}))
	d := New(s)
	d.MustInsert("R", value.Num(1.5))
	d.MustInsert("R", value.NullNum(7))
	d.MustInsert("R", value.Num(1.5))
	d.MustInsert("R", value.NullNum(8))
	ix := d.Index("R", 0)
	if got := ords(ix.Lookup(d, value.Num(1.5))); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("1.5 → %v", got)
	}
	if got := ords(ix.Lookup(d, value.NullNum(7))); len(got) != 1 || got[0] != 1 {
		t.Errorf("⊤7 → %v", got)
	}
	if got := ix.Lookup(d, value.Num(2)); got != nil {
		t.Errorf("2 → %v, want no entry", got)
	}
	if ix.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3 (1.5, ⊤7, ⊤8)", ix.Distinct())
	}
}

func TestIndexInvalidatedOnInsert(t *testing.T) {
	d := indexTestDB(t)
	_ = d.Index("R", 0)
	d.MustInsert("R", value.Base("a"), value.Num(5))
	ix := d.Index("R", 0)
	if got := ords(ix.Lookup(d, value.Base("a"))); len(got) != 3 || got[2] != 4 {
		t.Errorf("after insert: a → %v, want [0 2 4]", got)
	}
}

func TestTuplesDefensiveCopy(t *testing.T) {
	d := indexTestDB(t)
	ts := d.Tuples("R")
	ts[0][0] = value.Base("corrupted")
	ts[1] = nil
	if d.Row("R", 0)[0] != value.Base("a") {
		t.Error("mutating Tuples result corrupted the database")
	}
	if d.Len("R") != 4 {
		t.Errorf("Len = %d", d.Len("R"))
	}
	n := 0
	for tup := range d.All("R") {
		if len(tup) != 2 {
			t.Errorf("row %d = %v", n, tup)
		}
		n++
	}
	if n != 4 {
		t.Errorf("All yielded %d rows", n)
	}
	if d.Tuples("Nope") != nil {
		t.Error("unknown relation should yield nil")
	}
}
