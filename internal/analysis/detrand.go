package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the packages whose results must be bit-identical
// (Float64bits-equal) across worker counts, shard counts, failover, and
// crash recovery — the measurement core and everything that orders or
// partitions its inputs.
var deterministicPkgs = []string{
	"internal/core",
	"internal/exec",
	"internal/plan",
	"internal/poly",
	"internal/shard",
	"internal/realfmla",
}

// DetRand forbids nondeterministic time and randomness sources in
// deterministic packages: time.Now, the process-global math/rand
// functions (their shared source makes draws depend on goroutine
// interleaving), and rand.New / rand.NewSource with a source that is not
// derived from Options.Seed or a SplitMix64 chunk seed. The allowed
// idioms are exactly the ones the engine uses: rand.New(rand.NewSource(
// o.Seed)) and rand.New(mc.NewSplitMix64(...)) reseeded per chunk.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock and unseeded randomness in deterministic packages",
	Run:  runDetRand,
}

// randPkgs are the import paths whose package-level functions draw from
// a process-global, interleaving-dependent source.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors are the math/rand package-level names that do not
// touch the global source; their source arguments are checked instead.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDetRand(pass *Pass) error {
	if !pathHasAny(pass.Pkg.Path(), deterministicPkgs...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok {
				return true // type or const reference (rand.Rand, rand.Source)
			}
			switch ipath := pn.Imported().Path(); {
			case ipath == "time" && fn.Name() == "Now":
				pass.Reportf(sel.Pos(), "time.Now in deterministic package %s: results must be a pure function of inputs and Options.Seed", pass.Pkg.Name())
			case randPkgs[ipath] && !randConstructors[fn.Name()]:
				pass.Reportf(sel.Pos(), "global math/rand.%s draws from the process-global source, which depends on goroutine interleaving; use the seeded Engine rng or a SplitMix64 chunk seed", fn.Name())
			}
			return true
		})
	}
	// Second walk: constructor calls whose source argument is not
	// seed-derived.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
			if !ok || !randPkgs[pn.Imported().Path()] {
				return true
			}
			name := sel.Sel.Name
			if (name == "New" || name == "NewSource") && len(call.Args) == 1 {
				if name == "New" && isRandNewSourceCall(pass, call.Args[0]) {
					return true // the nested NewSource call reports for both
				}
				if !pass.seedDerived(call.Args[0]) {
					pass.Reportf(call.Pos(), "rand.%s source is not derived from Options.Seed, a constant, or a SplitMix64 chunk seed; randomness must be reproducible from the seed alone", name)
				}
			}
			return true
		})
	}
	return nil
}

// isRandNewSourceCall reports whether e is a rand.NewSource(...) call
// (whose own visit validates the seed, so the enclosing rand.New need
// not re-report).
func isRandNewSourceCall(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewSource" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.TypesInfo.Uses[x].(*types.PkgName)
	return ok && randPkgs[pn.Imported().Path()]
}

// seedDerived reports whether a rand source expression is acceptably
// deterministic: a compile-time constant, an expression mentioning a
// seed (any identifier or selector whose name contains "seed" or
// "splitmix", case-insensitively — Options.Seed, chunk seeds, and the
// mc.NewSplitMix64 constructor all match), or a value of type
// *mc.SplitMix64 (the engine's O(1)-reseed source).
func (p *Pass) seedDerived(e ast.Expr) bool {
	if tv, ok := p.TypesInfo.Types[e]; ok {
		if tv.Value != nil {
			return true
		}
		if isSplitMix(tv.Type) {
			return true
		}
	}
	derived := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		low := strings.ToLower(id.Name)
		if strings.Contains(low, "seed") || strings.Contains(low, "splitmix") {
			derived = true
		}
		return true
	})
	return derived
}

// isSplitMix reports whether t is (a pointer to) mc.SplitMix64.
func isSplitMix(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	} else if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "SplitMix64" && obj.Pkg() != nil && pathHasAny(obj.Pkg().Path(), "internal/mc")
}
