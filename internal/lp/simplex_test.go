package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestBasicMaximization(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0. Optimum at (4,0): 12.
	sol, err := Solve(Problem{
		C: []float64{3, 2},
		A: [][]float64{{1, 1}, {1, 3}},
		B: []float64{4, 6},
	})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	if !approx(sol.Value, 12) {
		t.Errorf("value = %g, want 12", sol.Value)
	}
}

func TestDegenerateAndTightOptimum(t *testing.T) {
	// max x + y s.t. x ≤ 1, y ≤ 1, x + y ≤ 2 (redundant). Optimum 2.
	sol, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 1}},
		B: []float64{1, 1, 2},
	})
	if err != nil || sol.Status != Optimal || !approx(sol.Value, 2) {
		t.Fatalf("got %+v err %v", sol, err)
	}
}

func TestPhase1NegativeRHS(t *testing.T) {
	// max -x s.t. -x ≤ -3 (i.e. x ≥ 3), x ≤ 10. Optimum x=3, value -3.
	sol, err := Solve(Problem{
		C: []float64{-1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-3, 10},
	})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	if !approx(sol.X[0], 3) {
		t.Errorf("x = %g, want 3", sol.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	// x ≥ 3 and x ≤ 1.
	sol, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-3, 1},
	})
	if err != nil || sol.Status != Infeasible {
		t.Fatalf("status %v err %v, want infeasible", sol.Status, err)
	}
}

func TestUnbounded(t *testing.T) {
	sol, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{-1}},
		B: []float64{0},
	})
	if err != nil || sol.Status != Unbounded {
		t.Fatalf("status %v err %v, want unbounded", sol.Status, err)
	}
}

func TestSolveFreeNegativeOptimum(t *testing.T) {
	// max x s.t. x ≤ -2 with free x: optimum -2 (impossible with x ≥ 0).
	sol, err := SolveFree(Problem{
		C: []float64{1},
		A: [][]float64{{1}},
		B: []float64{-2},
	})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	if !approx(sol.X[0], -2) {
		t.Errorf("x = %g, want -2", sol.X[0])
	}
}

func TestChebyshevCenterOfCone(t *testing.T) {
	// The FPRAS use case: find an interior direction of the cone
	// {x : x0 ≤ 0, x1 ≤ 0} within the box |xi| ≤ 1:
	// max t s.t. xi + t ≤ 0, xi ≤ 1, -xi ≤ 1, t ≤ 1 (vars x0, x1, t free).
	sol, err := SolveFree(Problem{
		C: []float64{0, 0, 1},
		A: [][]float64{
			{1, 0, 1},
			{0, 1, 1},
			{1, 0, 0}, {-1, 0, 0},
			{0, 1, 0}, {0, -1, 0},
			{0, 0, 1},
		},
		B: []float64{0, 0, 1, 1, 1, 1, 1},
	})
	if err != nil || sol.Status != Optimal {
		t.Fatalf("status %v err %v", sol.Status, err)
	}
	if sol.Value < 0.999 {
		t.Errorf("inradius proxy = %g, want ≈1", sol.Value)
	}
	if sol.X[0] > -0.9 || sol.X[1] > -0.9 {
		t.Errorf("interior point %v not deep inside the cone", sol.X)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}); err == nil {
		t.Error("mismatched B accepted")
	}
	if _, err := Solve(Problem{C: []float64{math.NaN()}, A: nil, B: nil}); err == nil {
		t.Error("NaN objective accepted")
	}
}

// TestRandomLPsAgainstVertexEnumeration cross-checks the simplex against a
// brute-force over constraint-intersection vertices in 2D.
func TestRandomLPsAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		m := 3 + rng.Intn(4)
		p := Problem{C: []float64{rng.NormFloat64(), rng.NormFloat64()}}
		for i := 0; i < m; i++ {
			p.A = append(p.A, []float64{rng.NormFloat64(), rng.NormFloat64()})
			p.B = append(p.B, rng.Float64()*3) // origin always feasible
		}
		// Bound the feasible region so the LP is never unbounded.
		p.A = append(p.A, []float64{1, 0}, []float64{0, 1})
		p.B = append(p.B, 10, 10)

		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v (origin is feasible)", trial, sol.Status)
		}
		// Feasibility of the reported point.
		for i, row := range p.A {
			if row[0]*sol.X[0]+row[1]*sol.X[1] > p.B[i]+1e-6 {
				t.Fatalf("trial %d: solution violates constraint %d", trial, i)
			}
		}
		if sol.X[0] < -1e-9 || sol.X[1] < -1e-9 {
			t.Fatalf("trial %d: negative coordinate %v", trial, sol.X)
		}
		// Brute force: evaluate all vertices (pairwise constraint
		// intersections plus axes) and compare objectives.
		best := 0.0 // origin
		consider := func(x, y float64) {
			if x < -1e-9 || y < -1e-9 {
				return
			}
			for i, row := range p.A {
				if row[0]*x+row[1]*y > p.B[i]+1e-7 {
					return
				}
			}
			if v := p.C[0]*x + p.C[1]*y; v > best {
				best = v
			}
		}
		full := append(append([][]float64{}, p.A...), []float64{-1, 0}, []float64{0, -1})
		fb := append(append([]float64{}, p.B...), 0, 0)
		for i := 0; i < len(full); i++ {
			for j := i + 1; j < len(full); j++ {
				det := full[i][0]*full[j][1] - full[i][1]*full[j][0]
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (fb[i]*full[j][1] - full[i][1]*fb[j]) / det
				y := (full[i][0]*fb[j] - fb[i]*full[j][0]) / det
				consider(x, y)
			}
		}
		if sol.Value < best-1e-5 {
			t.Fatalf("trial %d: simplex %g < vertex enumeration %g", trial, sol.Value, best)
		}
	}
}
