package poly

import "fmt"

// This file is the allocation-free companion of the polynomial algebra:
// a Scratch arena whose operations (Const, Var, Neg, Add, Sub, Mul) mirror
// the allocating Poly operations step for step — same construction order,
// same normalizeTerms call — so the values they produce are bit-identical
// to the allocating path, while all intermediates live in reusable
// buffers. The vectorized SQL executor evaluates every numeric predicate
// through a Scratch and only Materializes the (few) polynomials that end
// up in kept constraint atoms.
//
// The scalar Fold helpers at the bottom mirror the same operations on
// constant polynomials, so a predicate over constants only can be decided
// with plain float64 arithmetic and still agree exactly with the
// polynomial path (the zero polynomial is canonicalized to +0, and a zero
// operand annihilates a product outright, exactly as a term list with no
// entries does).

// SPoly is a scratch polynomial: a region of a Scratch arena. It is valid
// until the arena is next Reset.
type SPoly struct{ off, n int }

// Scratch is a reusable arena for building polynomials without
// per-operation allocations. The zero value is ready to use. A Scratch is
// not safe for concurrent use.
type Scratch struct {
	terms []Term
	vp    []VarPow
}

// Reset discards every scratch polynomial built since the last Reset,
// keeping the arena's capacity.
func (s *Scratch) Reset() {
	s.terms = s.terms[:0]
	s.vp = s.vp[:0]
}

// Const builds the constant polynomial c, mirroring Const.
func (s *Scratch) Const(c float64) SPoly {
	if c == 0 {
		return SPoly{off: len(s.terms)}
	}
	s.terms = append(s.terms, Term{Coef: c})
	return SPoly{off: len(s.terms) - 1, n: 1}
}

// Var builds the polynomial z_i, mirroring Var.
func (s *Scratch) Var(i int) SPoly {
	s.vp = append(s.vp, VarPow{Var: i, Pow: 1})
	vs := s.vp[len(s.vp)-1:]
	s.terms = append(s.terms, Term{Coef: 1, Vars: vs})
	return SPoly{off: len(s.terms) - 1, n: 1}
}

// Neg builds -a, mirroring Neg (Scale by -1).
func (s *Scratch) Neg(a SPoly) SPoly {
	off := len(s.terms)
	for _, t := range s.terms[a.off : a.off+a.n] {
		s.terms = append(s.terms, Term{Coef: -1 * t.Coef, Vars: t.Vars})
	}
	return SPoly{off: off, n: a.n}
}

// Add builds a + b, mirroring Add: concatenate both term lists, then
// normalize.
func (s *Scratch) Add(a, b SPoly) SPoly {
	off := len(s.terms)
	s.terms = append(s.terms, s.terms[a.off:a.off+a.n]...)
	s.terms = append(s.terms, s.terms[b.off:b.off+b.n]...)
	kept := normalizeTerms(s.terms[off:])
	s.terms = s.terms[:off+len(kept)]
	return SPoly{off: off, n: len(kept)}
}

// Sub builds a - b as Add(a, Neg(b)), mirroring Sub.
func (s *Scratch) Sub(a, b SPoly) SPoly { return s.Add(a, s.Neg(b)) }

// Mul builds a · b, mirroring Mul: pairwise term products in the same
// order, then normalize.
func (s *Scratch) Mul(a, b SPoly) SPoly {
	off := len(s.terms)
	for i := 0; i < a.n; i++ {
		ta := s.terms[a.off+i]
		for j := 0; j < b.n; j++ {
			tb := s.terms[b.off+j]
			s.terms = append(s.terms, Term{Coef: ta.Coef * tb.Coef, Vars: s.mulVars(ta.Vars, tb.Vars)})
		}
	}
	kept := normalizeTerms(s.terms[off:])
	s.terms = s.terms[:off+len(kept)]
	return SPoly{off: off, n: len(kept)}
}

// mulVars is the arena variant of mulVars: the merged exponent list is
// appended to the VarPow arena.
func (s *Scratch) mulVars(a, b []VarPow) []VarPow {
	off := len(s.vp)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Var < b[j].Var:
			s.vp = append(s.vp, a[i])
			i++
		case a[i].Var > b[j].Var:
			s.vp = append(s.vp, b[j])
			j++
		default:
			s.vp = append(s.vp, VarPow{Var: a[i].Var, Pow: a[i].Pow + b[j].Pow})
			i++
			j++
		}
	}
	s.vp = append(s.vp, a[i:]...)
	s.vp = append(s.vp, b[j:]...)
	return s.vp[off:len(s.vp):len(s.vp)]
}

// IsConst mirrors IsConst on a scratch polynomial.
func (s *Scratch) IsConst(a SPoly) (float64, bool) {
	if a.n == 0 {
		return 0, true
	}
	if a.n == 1 && len(s.terms[a.off].Vars) == 0 {
		return s.terms[a.off].Coef, true
	}
	return 0, false
}

// Materialize copies a scratch polynomial out of the arena into an
// immutable Poly in n variables, with its own exact-size backing arrays.
// The result is value-identical to what the allocating operations produce
// for the same construction sequence.
func (s *Scratch) Materialize(a SPoly, n int) Poly {
	if a.n == 0 {
		return Poly{N: n}
	}
	ts := make([]Term, a.n)
	nv := 0
	for _, t := range s.terms[a.off : a.off+a.n] {
		nv += len(t.Vars)
	}
	vs := make([]VarPow, 0, nv)
	for i, t := range s.terms[a.off : a.off+a.n] {
		off := len(vs)
		vs = append(vs, t.Vars...)
		ts[i] = Term{Coef: t.Coef, Vars: vs[off:len(vs):len(vs)]}
	}
	return Poly{N: n, Terms: ts}
}

// String renders a scratch polynomial, for debugging.
func (s *Scratch) String(a SPoly) string {
	return fmt.Sprint(s.Materialize(a, 0).Terms)
}

// FoldConst mirrors Const on scalars: the zero polynomial is +0.
func FoldConst(c float64) float64 {
	if c == 0 {
		return 0
	}
	return c
}

// FoldAdd mirrors Add on constant polynomials: coefficients of equal
// monomials are summed and an exact-zero result is the zero polynomial.
func FoldAdd(a, b float64) float64 {
	r := a + b
	if r == 0 {
		return 0
	}
	return r
}

// FoldNeg mirrors Neg (Scale by -1) on constant polynomials.
func FoldNeg(a float64) float64 {
	if a == 0 {
		return 0
	}
	return -1 * a
}

// FoldSub mirrors Sub on constant polynomials.
func FoldSub(a, b float64) float64 { return FoldAdd(a, FoldNeg(b)) }

// FoldMul mirrors Mul on constant polynomials: a zero operand has no
// terms, so the product has none either — even against ±Inf or NaN —
// and an exact-zero coefficient is dropped.
func FoldMul(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	r := a * b
	if r == 0 {
		return 0
	}
	return r
}
