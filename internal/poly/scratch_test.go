package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randExpr evaluates a random expression tree simultaneously through the
// allocating algebra, the scratch arena, and (when constant) the scalar
// Fold mirror, checking the three agree bit for bit.
type scratchChecker struct {
	rng *rand.Rand
	s   *Scratch
	n   int
}

func (c *scratchChecker) leafConst() float64 {
	vals := []float64{0, 1, -1, 2.5, -0.5, 3, 7, math.Copysign(0, -1), 1e-300, -1e-300}
	return vals[c.rng.Intn(len(vals))]
}

// build returns the same random expression through all three evaluators;
// constOnly forces a constant tree (the scalar mirror's domain).
func (c *scratchChecker) build(depth int, constOnly bool) (Poly, SPoly, float64, bool) {
	if depth == 0 || c.rng.Intn(3) == 0 {
		if !constOnly && c.rng.Intn(2) == 0 {
			i := c.rng.Intn(c.n)
			return Var(c.n, i), c.s.Var(i), 0, false
		}
		v := c.leafConst()
		return Const(c.n, v), c.s.Const(v), FoldConst(v), true
	}
	switch c.rng.Intn(4) {
	case 0:
		p, sp, f, fc := c.build(depth-1, constOnly)
		return p.Neg(), c.s.Neg(sp), FoldNeg(f), fc
	case 1:
		lp, lsp, lf, lc := c.build(depth-1, constOnly)
		rp, rsp, rf, rc := c.build(depth-1, constOnly)
		return lp.Add(rp), c.s.Add(lsp, rsp), FoldAdd(lf, rf), lc && rc
	case 2:
		lp, lsp, lf, lc := c.build(depth-1, constOnly)
		rp, rsp, rf, rc := c.build(depth-1, constOnly)
		return lp.Sub(rp), c.s.Sub(lsp, rsp), FoldSub(lf, rf), lc && rc
	default:
		lp, lsp, lf, lc := c.build(depth-1, constOnly)
		rp, rsp, rf, rc := c.build(depth-1, constOnly)
		return lp.Mul(rp), c.s.Mul(lsp, rsp), FoldMul(lf, rf), lc && rc
	}
}

func bitsEqual(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestScratchMirrorsAllocatingOps: random expression trees produce
// bit-identical polynomials through the arena and the allocating path.
func TestScratchMirrorsAllocatingOps(t *testing.T) {
	s := &Scratch{}
	for seed := int64(0); seed < 200; seed++ {
		c := &scratchChecker{rng: rand.New(rand.NewSource(seed)), s: s, n: 5}
		s.Reset()
		p, sp, _, _ := c.build(4, false)
		got := s.Materialize(sp, c.n)
		if !got.Equal(p) {
			t.Fatalf("seed %d: scratch %v != allocating %v", seed, got, p)
		}
		// Bit-level check on coefficients (Equal uses ==, which conflates
		// 0 and -0).
		for i := range p.Terms {
			if !bitsEqual(got.Terms[i].Coef, p.Terms[i].Coef) {
				t.Fatalf("seed %d: coefficient bits differ: %x vs %x",
					seed, math.Float64bits(got.Terms[i].Coef), math.Float64bits(p.Terms[i].Coef))
			}
		}
		if c, ok := s.IsConst(sp); ok != func() bool { _, k := p.IsConst(); return k }() {
			t.Fatalf("seed %d: IsConst disagreement", seed)
		} else if ok {
			if pc, _ := p.IsConst(); !bitsEqual(c, pc) {
				t.Fatalf("seed %d: IsConst value %v vs %v", seed, c, pc)
			}
		}
	}
}

// TestFoldMirrorsConstantPolys: on all-constant trees the scalar Fold
// mirror agrees bit for bit with the polynomial constant.
func TestFoldMirrorsConstantPolys(t *testing.T) {
	s := &Scratch{}
	for seed := int64(1000); seed < 1300; seed++ {
		c := &scratchChecker{rng: rand.New(rand.NewSource(seed)), s: s, n: 3}
		s.Reset()
		p, _, f, isConst := c.build(4, true)
		if !isConst {
			t.Fatal("constOnly tree not constant")
		}
		pc, ok := p.IsConst()
		if !ok {
			t.Fatalf("seed %d: constant tree produced non-constant poly", seed)
		}
		if !bitsEqual(f, pc) {
			t.Fatalf("seed %d: Fold %x != poly %x", seed, math.Float64bits(f), math.Float64bits(pc))
		}
	}
}

// TestFoldEdgeCases pins the zero-annihilation semantics the Fold mirror
// inherits from the term-list representation.
func TestFoldEdgeCases(t *testing.T) {
	if got := FoldMul(0, math.Inf(1)); got != 0 {
		t.Errorf("FoldMul(0, Inf) = %v", got)
	}
	if got := FoldMul(0, math.NaN()); got != 0 {
		t.Errorf("FoldMul(0, NaN) = %v", got)
	}
	if got := FoldConst(math.Copysign(0, -1)); !bitsEqual(got, 0) {
		t.Errorf("FoldConst(-0) = %x", math.Float64bits(got))
	}
	if got := FoldAdd(1, -1); !bitsEqual(got, 0) {
		t.Errorf("FoldAdd(1,-1) = %x", math.Float64bits(got))
	}
}

// TestScratchQuickConstants fuzzes the scalar mirror against the
// polynomial path over arbitrary float pairs (including NaN and ±Inf
// patterns quick generates).
func TestScratchQuickConstants(t *testing.T) {
	n := 2
	f := func(a, b float64) bool {
		add, _ := Const(n, a).Add(Const(n, b)).IsConst()
		mul, _ := Const(n, a).Mul(Const(n, b)).IsConst()
		sub, _ := Const(n, a).Sub(Const(n, b)).IsConst()
		return bitsEqual(FoldAdd(FoldConst(a), FoldConst(b)), add) &&
			bitsEqual(FoldMul(FoldConst(a), FoldConst(b)), mul) &&
			bitsEqual(FoldSub(FoldConst(a), FoldConst(b)), sub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
