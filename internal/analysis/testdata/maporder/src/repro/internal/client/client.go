// Package client is the maporder gating negative: not a deterministic
// or wire-building package, so map-order here is not checked.
package client

func Endpoints(m map[string]string) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
