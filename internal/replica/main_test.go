package replica

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind:
// catchup loops and log-shipping tails must exit when a replica stops.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
