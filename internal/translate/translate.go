// Package translate implements Proposition 5.3 of the paper: given a query
// q ∈ FO(+,·,<), a database D, and a candidate answer tuple, it constructs
// in polynomial time (data complexity) a quantifier-free formula
// φ(z₁..z_k) over the real field — one variable per numerical null of D —
// such that for every interpretation z of the numerical nulls,
//
//	φ(z)  ⇔  v_z(a,s) ∈ q(v_z(D)),
//
// where v_z extends a bijective valuation of the base nulls (Prop 5.2).
// Consequently μ(q, D, (a,s)) = ν(φ) (Theorem 5.4).
//
// The construction replaces base-sort quantifiers by explicit disjunctions
// (∃) or conjunctions (∀) over the active base domain, numerical
// quantifiers by disjunctions/conjunctions over Cnum(D) ∪ Nnum(D), and
// relational atoms by disjunctions over the stored tuples, leaving only
// polynomial sign conditions over the null variables.
package translate

import (
	"fmt"

	"repro/internal/db"
	"repro/internal/fo"
	"repro/internal/poly"
	"repro/internal/realfmla"
	"repro/internal/value"
)

// Result is the output of the translation.
type Result struct {
	// Phi is the quantifier-free real formula over z_0..z_{K-1}.
	Phi realfmla.Formula
	// NullIDs maps variable index i to the numerical null ID it stands for.
	NullIDs []int
	// Index maps a numerical null ID to its variable index.
	Index map[int]int
}

// K returns the number of variables (numerical nulls of the database).
func (r *Result) K() int { return len(r.NullIDs) }

// cell is the translated value of a term: a base string or a polynomial
// over the null variables.
type cell struct {
	isNum bool
	base  string
	num   poly.Poly
}

type translator struct {
	k     int
	index map[int]int

	baseDomain []string
	numDomain  []cell
	rels       map[string][][]cell
}

// Query translates (q, D, args) into a real formula. args supplies values
// for q's free variables, in order; they may be constants or nulls of D
// (nulls in base positions are interpreted by the same bijective valuation
// as the database's base nulls; numerical nulls become their variables).
func Query(q *fo.Query, d *db.Database, args []value.Value) (*Result, error) {
	if err := fo.Typecheck(q, d.Schema()); err != nil {
		return nil, err
	}
	if len(args) != len(q.Free) {
		return nil, fmt.Errorf("translate: query has %d free variables, got %d arguments",
			len(q.Free), len(args))
	}

	nullIDs := d.NumNulls()
	tr := &translator{k: len(nullIDs), index: make(map[int]int, len(nullIDs))}
	for i, id := range nullIDs {
		tr.index[id] = i
	}

	// Active base domain: constants of D plus the bijective-valuation images
	// of base nulls of D.
	tr.baseDomain = append(tr.baseDomain, d.BaseConstants()...)
	for _, id := range d.BaseNulls() {
		tr.baseDomain = append(tr.baseDomain, fo.FreshBaseName(id))
	}
	// Active numerical domain: Cnum(D) ∪ Nnum(D).
	for _, x := range d.NumConstants() {
		tr.numDomain = append(tr.numDomain, cell{isNum: true, num: poly.Const(tr.k, x)})
	}
	for _, id := range nullIDs {
		tr.numDomain = append(tr.numDomain, cell{isNum: true, num: poly.Var(tr.k, tr.index[id])})
	}
	// Relation contents as cells.
	tr.rels = make(map[string][][]cell)
	for _, rel := range d.Schema().Relations() {
		rows := make([][]cell, 0, d.Len(rel.Name))
		for t := range d.All(rel.Name) {
			row := make([]cell, len(t))
			for i, v := range t {
				c, err := tr.cellForValue(v)
				if err != nil {
					return nil, err
				}
				row[i] = c
			}
			rows = append(rows, row)
		}
		tr.rels[rel.Name] = rows
	}

	env := make(map[string]cell, len(args))
	for i, fv := range q.Free {
		c, err := tr.cellForValue(args[i])
		if err != nil {
			return nil, err
		}
		if c.isNum != (fv.Sort == fo.SortNum) {
			return nil, fmt.Errorf("translate: argument %d (%s) has wrong sort for %s",
				i+1, args[i], fv.Name)
		}
		env[fv.Name] = c
	}

	phi, err := tr.formula(q.Body, env)
	if err != nil {
		return nil, err
	}
	return &Result{Phi: phi, NullIDs: nullIDs, Index: tr.index}, nil
}

func (tr *translator) cellForValue(v value.Value) (cell, error) {
	switch v.Kind() {
	case value.BaseConst:
		return cell{base: v.Str()}, nil
	case value.BaseNull:
		return cell{base: fo.FreshBaseName(v.NullID())}, nil
	case value.NumConst:
		return cell{isNum: true, num: poly.Const(tr.k, v.Float())}, nil
	case value.NumNull:
		i, ok := tr.index[v.NullID()]
		if !ok {
			return cell{}, fmt.Errorf("translate: numerical null ⊤%d does not occur in the database", v.NullID())
		}
		return cell{isNum: true, num: poly.Var(tr.k, i)}, nil
	}
	return cell{}, fmt.Errorf("translate: unknown value kind")
}

func (tr *translator) formula(f fo.Formula, env map[string]cell) (realfmla.Formula, error) {
	switch x := f.(type) {
	case fo.True:
		return realfmla.FTrue{}, nil
	case fo.False:
		return realfmla.FFalse{}, nil
	case fo.Atom:
		return tr.atom(x, env)
	case fo.BaseEq:
		l, err := tr.term(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := tr.term(x.R, env)
		if err != nil {
			return nil, err
		}
		if l.isNum || r.isNum {
			return nil, fmt.Errorf("translate: base equality over numerical terms")
		}
		if l.base == r.base {
			return realfmla.FTrue{}, nil
		}
		return realfmla.FFalse{}, nil
	case fo.Cmp:
		l, err := tr.term(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := tr.term(x.R, env)
		if err != nil {
			return nil, err
		}
		if !l.isNum || !r.isNum {
			return nil, fmt.Errorf("translate: comparison over base terms")
		}
		diff := l.num.Sub(r.num)
		var rel realfmla.Rel
		switch x.Op {
		case fo.Lt:
			rel = realfmla.LT
		case fo.Le:
			rel = realfmla.LE
		case fo.EqNum:
			rel = realfmla.EQ
		case fo.NeNum:
			rel = realfmla.NE
		case fo.Ge:
			rel = realfmla.GE
		case fo.Gt:
			rel = realfmla.GT
		}
		// Constant atoms fold immediately.
		if _, ok := diff.IsConst(); ok {
			if (realfmla.Atom{P: diff, Rel: rel}).Eval(make([]float64, tr.k)) {
				return realfmla.FTrue{}, nil
			}
			return realfmla.FFalse{}, nil
		}
		return realfmla.FAtom{A: realfmla.Atom{P: diff, Rel: rel}}, nil
	case fo.Not:
		g, err := tr.formula(x.F, env)
		if err != nil {
			return nil, err
		}
		return realfmla.NNF(realfmla.FNot{F: g}), nil
	case fo.And:
		l, err := tr.formula(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := tr.formula(x.R, env)
		if err != nil {
			return nil, err
		}
		return realfmla.And(l, r), nil
	case fo.Or:
		l, err := tr.formula(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := tr.formula(x.R, env)
		if err != nil {
			return nil, err
		}
		return realfmla.Or(l, r), nil
	case fo.Implies:
		l, err := tr.formula(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := tr.formula(x.R, env)
		if err != nil {
			return nil, err
		}
		return realfmla.Or(realfmla.NNF(realfmla.FNot{F: l}), r), nil
	case fo.Exists:
		return tr.quant(x.Var, x.Sort, x.Body, env, true)
	case fo.Forall:
		return tr.quant(x.Var, x.Sort, x.Body, env, false)
	}
	return nil, fmt.Errorf("translate: unknown formula node %T", f)
}

// quant expands a quantifier over the active domain: ∃ becomes a
// disjunction, ∀ a conjunction.
func (tr *translator) quant(name string, srt fo.Sort, body fo.Formula, env map[string]cell, existential bool) (realfmla.Formula, error) {
	old, had := env[name]
	defer func() {
		if had {
			env[name] = old
		} else {
			delete(env, name)
		}
	}()
	var parts []realfmla.Formula
	add := func(c cell) error {
		env[name] = c
		g, err := tr.formula(body, env)
		if err != nil {
			return err
		}
		parts = append(parts, g)
		return nil
	}
	if srt == fo.SortBase {
		for _, s := range tr.baseDomain {
			if err := add(cell{base: s}); err != nil {
				return nil, err
			}
		}
	} else {
		for _, c := range tr.numDomain {
			if err := add(c); err != nil {
				return nil, err
			}
		}
	}
	if existential {
		return realfmla.Or(parts...), nil
	}
	return realfmla.And(parts...), nil
}

// atom expands R(t̄) into a disjunction over the tuples stored in R: the
// argument cells must agree with the tuple cells component-wise (base cells
// syntactically, numerical cells as polynomial equalities).
func (tr *translator) atom(a fo.Atom, env map[string]cell) (realfmla.Formula, error) {
	args := make([]cell, len(a.Args))
	for i, t := range a.Args {
		c, err := tr.term(t, env)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	rows, ok := tr.rels[a.Rel]
	if !ok {
		return nil, fmt.Errorf("translate: unknown relation %s", a.Rel)
	}
	var disjuncts []realfmla.Formula
	for _, row := range rows {
		if len(row) != len(args) {
			return nil, fmt.Errorf("translate: arity mismatch for %s", a.Rel)
		}
		var conj []realfmla.Formula
		match := true
		for i := range row {
			if row[i].isNum != args[i].isNum {
				return nil, fmt.Errorf("translate: sort mismatch in column %d of %s", i+1, a.Rel)
			}
			if !row[i].isNum {
				if row[i].base != args[i].base {
					match = false
					break
				}
				continue
			}
			diff := row[i].num.Sub(args[i].num)
			if c, isConst := diff.IsConst(); isConst {
				if c != 0 {
					match = false
					break
				}
				continue
			}
			conj = append(conj, realfmla.FAtom{A: realfmla.Atom{P: diff, Rel: realfmla.EQ}})
		}
		if !match {
			continue
		}
		disjuncts = append(disjuncts, realfmla.And(conj...))
	}
	return realfmla.Or(disjuncts...), nil
}

func (tr *translator) term(t fo.Term, env map[string]cell) (cell, error) {
	switch x := t.(type) {
	case fo.Var:
		c, ok := env[x.Name]
		if !ok {
			return cell{}, fmt.Errorf("translate: unbound variable %s", x.Name)
		}
		return c, nil
	case fo.BaseConst:
		return cell{base: x.Value}, nil
	case fo.NumConst:
		return cell{isNum: true, num: poly.Const(tr.k, x.Value)}, nil
	case fo.Add:
		return tr.numBinop(x.L, x.R, env, poly.Poly.Add)
	case fo.Sub:
		return tr.numBinop(x.L, x.R, env, poly.Poly.Sub)
	case fo.Mul:
		return tr.numBinop(x.L, x.R, env, poly.Poly.Mul)
	case fo.Neg:
		c, err := tr.term(x.X, env)
		if err != nil {
			return cell{}, err
		}
		if !c.isNum {
			return cell{}, fmt.Errorf("translate: unary - over base term")
		}
		return cell{isNum: true, num: c.num.Neg()}, nil
	}
	return cell{}, fmt.Errorf("translate: unknown term node %T", t)
}

func (tr *translator) numBinop(l, r fo.Term, env map[string]cell, op func(poly.Poly, poly.Poly) poly.Poly) (cell, error) {
	lc, err := tr.term(l, env)
	if err != nil {
		return cell{}, err
	}
	rc, err := tr.term(r, env)
	if err != nil {
		return cell{}, err
	}
	if !lc.isNum || !rc.isNum {
		return cell{}, fmt.Errorf("translate: arithmetic over base terms")
	}
	return cell{isNum: true, num: op(lc.num, rc.num)}, nil
}
