package server

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind:
// stream workers, admission waiters, and replication shippers must all
// be torn down by Close.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
