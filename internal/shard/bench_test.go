package shard_test

// BenchmarkShardedScatterGather prices the scatter-gather coordinator:
// the same filtered-scan measure query on the single-store pipeline and
// through stores of increasing shard counts. The sharded runs pay for
// per-shard plan rebasing, the derivation channels, and the frontier
// merge; the measures themselves are identical work on every variant
// (same candidates, same per-candidate seeds), so the delta between
// `single` and `shards-N` is the coordination overhead the PR's alloc
// budgets guard.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/shard"
	"repro/internal/sqlfront"
)

func benchFixture(b *testing.B) *db.Database {
	b.Helper()
	d, err := datagen.Generate(datagen.Config{
		Seed: 5, Products: 200, Orders: 150, Market: 120, Segments: 10,
		NullRate: 0.3, MarketNullRate: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkShardedScatterGather(b *testing.B) {
	ref := benchFixture(b)
	q := sqlfront.MustParse(`SELECT M.seg FROM Market M WHERE M.rrp * M.dis > 5`)
	const eps, delta = 0.25, 0.25
	ctx := context.Background()

	b.Run("single", func(b *testing.B) {
		eng := core.New(core.Options{Seed: 9})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.MeasureSQL(q, ref, eps, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 2, 4} {
		st, err := shard.FromDatabase(ref, n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			eng := core.New(core.Options{Seed: 9})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.MeasureSQL(ctx, eng, q, eps, delta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
