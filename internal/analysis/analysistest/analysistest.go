// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want annotations — a standard-
// library reimplementation of the x/tools analysistest contract (the
// build environment is offline, so x/tools itself is unavailable).
//
// Fixtures live in a GOPATH-shaped tree: testdata/src/<importpath>/*.go.
// Import paths under testdata/src shadow real packages, so a fixture at
// testdata/src/repro/internal/wal can stand in for the real WAL package
// and analyzers that gate on package paths see the paths they expect.
// Imports not present under testdata/src resolve normally (standard
// library, or the real module).
//
// A // want annotation asserts a diagnostic on its line:
//
//	rand.Int() // want `global math/rand`
//
// The backquoted string is a regexp matched against the diagnostic
// message. Several space-separated backquoted regexps assert several
// diagnostics on one line. Every diagnostic must be matched by an
// annotation and every annotation by a diagnostic, or the test fails.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package (an import path under
// testdata/src) and reports mismatches between the analyzer's
// diagnostics and the fixtures' // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	loader := analysis.NewLoader()
	loader.Lookup = func(path string) (string, bool) {
		dir := filepath.Join(src, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
		return "", false
	}
	for _, pattern := range patterns {
		dir, ok := loader.Lookup(pattern)
		if !ok {
			t.Errorf("no fixture directory for %s under %s", pattern, src)
			continue
		}
		pkg, err := loader.LoadFixture(pattern)
		if err != nil {
			t.Errorf("load %s: %v", pattern, err)
			continue
		}
		diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, pattern, err)
			continue
		}
		wants, err := parseWants(dir)
		if err != nil {
			t.Errorf("parse wants in %s: %v", dir, err)
			continue
		}
		check(t, pattern, diags, wants)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// parseWants scans the fixture sources for // want annotations. It works
// on raw lines rather than the AST so an annotation can follow any
// token, mirroring x/tools analysistest.
func parseWants(dir string) ([]*want, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			rest := line[idx+len("// want "):]
			ms := wantRE.FindAllStringSubmatch(rest, -1)
			if len(ms) == 0 {
				return nil, fmt.Errorf("%s:%d: // want with no backquoted regexp", e.Name(), i+1)
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp: %v", e.Name(), i+1, err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re, raw: m[1]})
			}
		}
	}
	return wants, nil
}

func check(t *testing.T, pattern string, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		found := false
		for _, w := range wants {
			if w.matched || w.file != base || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s (%s)", pattern, base, d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", pattern, w.file, w.line, w.raw)
		}
	}
}
