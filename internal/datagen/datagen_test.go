package datagen

import (
	"testing"

	"repro/internal/sqlfront"
	"repro/internal/value"
)

func TestGenerateCountsAndSchema(t *testing.T) {
	d, err := Generate(Config{Seed: 3, Products: 200, Orders: 150, Market: 40})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Tuples("Products")); got != 200 {
		t.Errorf("Products = %d", got)
	}
	if got := len(d.Tuples("Orders")); got != 150 {
		t.Errorf("Orders = %d", got)
	}
	if got := len(d.Tuples("Market")); got != 40 {
		t.Errorf("Market = %d", got)
	}
	if d.IsComplete() {
		t.Error("generated database has no nulls at the default null rate")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 9, Products: 50, Orders: 50, Market: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 9, Products: 50, Orders: 50, Market: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"Products", "Orders", "Market"} {
		ta, tb := a.Tuples(rel), b.Tuples(rel)
		if len(ta) != len(tb) {
			t.Fatalf("%s sizes differ", rel)
		}
		for i := range ta {
			if !ta[i].Equal(tb[i]) {
				t.Fatalf("%s row %d differs: %v vs %v", rel, i, ta[i], tb[i])
			}
		}
	}
	c, err := Generate(Config{Seed: 10, Products: 50, Orders: 50, Market: 20})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i, tup := range a.Tuples("Products") {
		if !tup.Equal(c.Tuples("Products")[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestNullRates(t *testing.T) {
	d, err := Generate(Config{Seed: 5, Products: 4000, Orders: 10, Market: 10, NullRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	nulls := 0
	for _, tup := range d.Tuples("Products") {
		for _, v := range tup {
			if v.Kind() == value.NumNull {
				nulls++
			}
		}
	}
	rate := float64(nulls) / float64(2*4000) // two numeric columns
	if rate < 0.17 || rate > 0.23 {
		t.Errorf("numerical null rate = %.3f, want ≈0.2", rate)
	}
	if _, err := Generate(Config{NullRate: 1.5}); err == nil {
		t.Error("null rate > 1 accepted")
	}
}

func TestNoNullsWhenRateNegligible(t *testing.T) {
	d, err := Generate(Config{Seed: 5, Products: 50, Orders: 50, Market: 10,
		NullRate: 1e-12, MarketNullRate: 1e-12, BaseNullRate: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsComplete() {
		t.Error("nulls generated at negligible rate")
	}
}

// TestExperimentQueriesRunEndToEnd: the three Section 9 queries parse,
// bind against the generated schema, and produce candidates with
// constraints.
func TestExperimentQueriesRunEndToEnd(t *testing.T) {
	d, err := Generate(Config{Seed: 7, Products: 400, Orders: 300, Market: 80, NullRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]string{
		"CompetitiveAdvantage":    CompetitiveAdvantage,
		"NeverKnowinglyUndersold": NeverKnowinglyUndersold,
		"UnfairDiscount":          UnfairDiscount,
	} {
		q, err := sqlfront.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		res, err := sqlfront.Evaluate(q, d)
		if err != nil {
			t.Fatalf("%s: evaluate: %v", name, err)
		}
		if len(res.Candidates) == 0 {
			t.Errorf("%s: no candidates on a 780-tuple database", name)
		}
		if len(res.Candidates) > 25 {
			t.Errorf("%s: LIMIT 25 not applied (%d candidates)", name, len(res.Candidates))
		}
	}
}
