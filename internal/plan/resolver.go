package plan

import (
	"fmt"

	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Resolver resolves a query's FROM aliases and column references against
// a schema and normalizes conditions. It is the name-resolution half of
// planning, shared with the SQL→FO compiler.
type Resolver struct {
	rels    map[string]*schema.Relation
	origPos map[string]int // alias → FROM-clause position
}

// NewResolver validates the FROM clause (known relations, distinct
// aliases) and returns a resolver for the query.
func NewResolver(q *sqlast.Query, s *schema.Schema) (*Resolver, error) {
	r := &Resolver{rels: make(map[string]*schema.Relation), origPos: make(map[string]int)}
	for i, t := range q.From {
		rel := s.Relation(t.Relation)
		if rel == nil {
			return nil, fmt.Errorf("plan: unknown relation %s", t.Relation)
		}
		if _, dup := r.rels[t.Alias]; dup {
			return nil, fmt.Errorf("plan: duplicate alias %s", t.Alias)
		}
		r.rels[t.Alias] = rel
		r.origPos[t.Alias] = i
	}
	return r, nil
}

// Relation returns the relation schema bound to a FROM alias (nil when
// the alias is unknown).
func (r *Resolver) Relation(alias string) *schema.Relation { return r.rels[alias] }

// ColType resolves a column reference to its sort.
func (r *Resolver) ColType(c sqlast.ColRef) (schema.ColType, error) {
	rel, ok := r.rels[c.Table]
	if !ok {
		return 0, fmt.Errorf("plan: unknown alias %s", c.Table)
	}
	i := rel.ColumnIndex(c.Col)
	if i < 0 {
		return 0, fmt.Errorf("plan: relation %s has no column %s", rel.Name, c.Col)
	}
	return rel.Columns[i].Type, nil
}

// Normalize resolves the base-vs-numeric ambiguity of "col = col"
// conditions against the schema and validates column references and
// sorts: an equality over numeric columns becomes a numeric comparison,
// mixed-sort equalities and base columns in arithmetic are rejected.
func (r *Resolver) Normalize(c sqlast.Condition) (sqlast.Condition, error) {
	switch c.Kind {
	case sqlast.CondBaseEq:
		lt, err := r.ColType(c.LCol)
		if err != nil {
			return c, err
		}
		rt, err := r.ColType(c.RCol)
		if err != nil {
			return c, err
		}
		if lt != rt {
			return c, fmt.Errorf("plan: equality between %s (%s) and %s (%s)", c.LCol, lt, c.RCol, rt)
		}
		if lt == schema.Num {
			return sqlast.Condition{Kind: sqlast.CondNumCmp, Op: sqlast.Eq, LExp: c.LExp, RExp: c.RExp}, nil
		}
		return c, nil
	case sqlast.CondBaseEqConst:
		t, err := r.ColType(c.LCol)
		if err != nil {
			return c, err
		}
		if t != schema.Base {
			return c, fmt.Errorf("plan: string literal compared with numeric column %s", c.LCol)
		}
		return c, nil
	case sqlast.CondNumCmp:
		for _, e := range []*sqlast.Expr{c.LExp, c.RExp} {
			if err := r.checkNumExpr(e); err != nil {
				return c, err
			}
		}
		return c, nil
	}
	return c, fmt.Errorf("plan: unknown condition kind")
}

func (r *Resolver) checkNumExpr(e *sqlast.Expr) error {
	switch e.Kind {
	case sqlast.ExprCol:
		t, err := r.ColType(e.Col)
		if err != nil {
			return err
		}
		if t != schema.Num {
			return fmt.Errorf("plan: base column %s used in arithmetic", e.Col)
		}
		return nil
	case sqlast.ExprConst:
		return nil
	case sqlast.ExprNeg:
		return r.checkNumExpr(e.L)
	default:
		if err := r.checkNumExpr(e.L); err != nil {
			return err
		}
		return r.checkNumExpr(e.R)
	}
}
