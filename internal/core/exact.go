package core

import (
	"math"
	"math/big"
	"sort"

	"repro/internal/realfmla"
)

// orderAtomsOnly reports whether every atom of the (reduced) formula is an
// order atom: a linear polynomial whose variable part is ±α·z_i or
// α·(z_i - z_j). The asymptotic truth of such formulas is constant on each
// signed-permutation cell of the ball — the cell's sign pattern decides
// single-variable atoms and the magnitude order together with the signs
// decides difference atoms — which is what makes the exact enumeration
// below correct. Formulas translated from FO(<) queries always have this
// shape.
func orderAtomsOnly(f realfmla.Formula) bool {
	for _, a := range realfmla.Atoms(f) {
		c, _, ok := a.P.LinearForm()
		if !ok {
			return false
		}
		var nz []int
		for i, ci := range c {
			if ci != 0 {
				nz = append(nz, i)
			}
		}
		switch len(nz) {
		case 0, 1:
			// constant or single-variable: fine
		case 2:
			if c[nz[0]]+c[nz[1]] != 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// exactOrder computes ν(φ) exactly as a rational number for order formulas
// by enumerating the 2ⁿ·n! signed-permutation cells: the unit ball is
// partitioned, up to measure zero, into equal-volume cells indexed by a
// sign pattern s ∈ {±1}ⁿ and an ordering of the coordinate magnitudes. The
// asymptotic truth of φ is constant on each cell and is evaluated at the
// integer representative a_i = s_i · rank_i. It evaluates through the
// entry's cached compiled form, so repeated calls (ε-sweeps) compile
// nothing. Returns ok=false when φ is not an order formula or the cell
// count exceeds Options.MaxExactCells.
func (e *Engine) exactOrder(ent *compiledEntry) (Result, bool, error) {
	n := len(ent.vars)
	if n == 0 || !orderAtomsOnly(ent.reduced) {
		return Result{}, false, nil
	}
	// cells = 2^n · n!
	cells := 1
	for i := 1; i <= n; i++ {
		cells *= 2 * i
		if cells > e.opts.MaxExactCells {
			return Result{}, false, nil
		}
	}

	ev := ent.sampler().ev
	sat := 0
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i + 1 // magnitudes 1..n
	}
	a := make([]float64, n)
	// Enumerate permutations (Heap's algorithm) × sign masks.
	var visit func(k int)
	evalCell := func() {
		for mask := 0; mask < 1<<n; mask++ {
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					a[i] = -float64(perm[i])
				} else {
					a[i] = float64(perm[i])
				}
			}
			if ev.AsymEval(a, 0) {
				sat++
			}
		}
	}
	visit = func(k int) {
		if k == 1 {
			evalCell()
			return
		}
		for i := 0; i < k; i++ {
			visit(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	visit(n)

	rat := big.NewRat(int64(sat), int64(cells))
	v, _ := rat.Float64()
	return Result{Value: v, Rat: rat, Exact: true, Method: MethodExactCells}, true, nil
}

// exactSector computes ν(φ) exactly (up to floating point) for formulas
// with at most two relevant variables: with one variable, the asymptotic
// truth along a ray depends only on the ray's sign — for *any* polynomial
// atoms — so ν is the average of the two ray evaluations; with two
// variables and linear atoms, the homogenized satisfying set is a finite
// union of circular sectors whose boundaries are the lines c·a = 0 of the
// atoms, so ν is the total angle of the sectors on which φ is
// asymptotically true, divided by 2π. This realizes the closed forms of
// Prop 6.1 and the introduction example. Returns ok=false when more than
// two variables are relevant, or two are and some atom is nonlinear.
func (e *Engine) exactSector(f realfmla.Formula) (Result, bool) {
	n := realfmla.NumVars(f)
	switch n {
	case 0:
		return trivialResult(realfmla.Eval(f, nil), 0), true
	case 1:
		v := 0.0
		if realfmla.AsymEval(f, []float64{1}, 0) {
			v += 0.5
		}
		if realfmla.AsymEval(f, []float64{-1}, 0) {
			v += 0.5
		}
		rat := new(big.Rat).SetFloat64(v)
		return Result{Value: v, Rat: rat, Exact: true, Method: MethodExactSector}, true
	case 2:
		if !realfmla.IsLinear(f) {
			return Result{}, false
		}
		// Boundary angles of all atoms with a nonzero homogeneous part.
		var angles []float64
		for _, a := range realfmla.Atoms(f) {
			c, _, _ := a.P.LinearForm()
			if c[0] == 0 && c[1] == 0 {
				continue
			}
			// c0·cosθ + c1·sinθ = 0 at θ and θ+π.
			th := math.Atan2(-c[0], c[1])
			for _, t := range []float64{th, th + math.Pi} {
				t = math.Mod(t, 2*math.Pi)
				if t < 0 {
					t += 2 * math.Pi
				}
				angles = append(angles, t)
			}
		}
		if len(angles) == 0 {
			// No direction dependence: constant asymptotic truth.
			return trivialResult(realfmla.AsymEval(f, []float64{1, 0}, 0), 2), true
		}
		sort.Float64s(angles)
		// Deduplicate near-equal angles.
		ded := angles[:0]
		for _, t := range angles {
			if len(ded) == 0 || t-ded[len(ded)-1] > 1e-12 {
				ded = append(ded, t)
			}
		}
		angles = ded
		total := 0.0
		for i := range angles {
			lo := angles[i]
			hi := angles[(i+1)%len(angles)]
			if i == len(angles)-1 {
				hi += 2 * math.Pi
			}
			mid := (lo + hi) / 2
			if realfmla.AsymEval(f, []float64{math.Cos(mid), math.Sin(mid)}, 0) {
				total += hi - lo
			}
		}
		v := total / (2 * math.Pi)
		return Result{Value: v, Exact: true, Method: MethodExactSector}, true
	default:
		return Result{}, false
	}
}
