package arithdb_test

// Sharded-fleet chaos harness — the acceptance check of the sharding PR
// (`make shard-check`). A two-shard fleet (one arithdbd-shaped server
// per hash shard) takes a randomized write workload through a hostile
// network (internal/faultnet: injected latency and dropped connections)
// via the client-side sharded router, with the failed sub-batches
// retried per shard exactly as a fleet operator's writer would. The run
// asserts the write-routing guarantees:
//
//  1. No lost acks: every sub-batch a shard acknowledged is present on
//     that shard, in acknowledgment order.
//  2. No duplicates: retries never double-commit — faults are injected
//     on the client transport, where a drop refuses the connection
//     before the request is sent, so a failed attempt is known-
//     uncommitted and the retry is safe. (Server-side write faults and
//     mid-response cuts are deliberately NOT injected on the write
//     path: they fail the ack after the commit, making the batch's fate
//     unknowable — the same reason client.Client never retries
//     transport errors on writes.)
//  3. Correct placement: every row sits on the shard the routing hash
//     assigns it, so fleet-level placement agrees with the in-process
//     sharded store bit for bit.
//
// Reads (fleet Health/Info) run throughout under the same faults with
// the client's own retry/failover machinery and must never miss.

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/db"
	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/value"
)

func TestShardChaosWriteRoutingAndPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const numShards = 2

	// One server per hash shard, each behind its own fault injector.
	shardDBs := make([]*db.Database, numShards)
	faults := make([]*faultnet.Faults, numShards)
	groups := make([]*client.Client, numShards)
	for i := 0; i < numShards; i++ {
		shardDBs[i] = db.New(datagen.Schema())
		srv, err := server.New(server.Config{
			DB:     shardDBs[i],
			Engine: core.Options{Seed: 7},
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		faults[i] = faultnet.New(int64(301 + i))
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		defer hs.Close()
		// Faults live in the client transport (not the server listener):
		// a transport drop refuses the connection before the request is
		// sent, so a failed write is known-uncommitted — the property the
		// retry loop below depends on.
		hc := &http.Client{Transport: faultnet.Transport(nil, faults[i])}
		groups[i] = client.NewFailoverWith([]string{"http://" + ln.Addr().String()}, hc).
			WithRetry(client.RetryPolicy{MaxAttempts: 8, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond}).
			WithAttemptTimeout(2 * time.Second)
	}
	sc, err := client.NewSharded(groups)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// A calm warm-up proves the happy path, then the network degrades:
	// latency plus connections refused before any byte (see the package
	// comment for why mid-response cuts stay off the write path).
	if err := sc.Health(ctx); err != nil {
		t.Fatalf("warm-up health: %v", err)
	}
	for _, f := range faults {
		f.SetLatency(time.Millisecond, 2*time.Millisecond)
		f.SetDropProb(0.3)
	}

	randTuple := func() value.Tuple {
		rrp := value.Value(value.Num(float64(rng.Intn(200)) / 2))
		if rng.Intn(4) == 0 {
			rrp = value.NullNum(1000 + rng.Intn(50))
		}
		return value.Tuple{
			value.Base(fmt.Sprintf("seg%d", rng.Intn(6))),
			rrp,
			value.Num(float64(rng.Intn(10)) / 10),
		}
	}

	// expected mirrors, per shard, every sub-batch that shard
	// acknowledged, in acknowledgment order.
	expected := make([][]value.Tuple, numShards)
	retries := 0
	const rounds = 40
	for round := 0; round < rounds; round++ {
		batch := make([]value.Tuple, 1+rng.Intn(4))
		for j := range batch {
			batch[j] = randTuple()
			if j > 0 && rng.Intn(3) == 0 {
				batch[j] = batch[0].Clone() // duplicates must co-locate
			}
		}
		sub := sc.Split(batch)
		outcomes, _ := sc.Insert(ctx, "Market", batch)
		for _, oc := range outcomes {
			if oc.Tuples == 0 {
				continue
			}
			// Retry this shard's sub-batch until its primary acks: a
			// dropped connection never reached the server, so the
			// sub-batch is known-uncommitted and the retry cannot
			// double-apply.
			deadline := time.Now().Add(30 * time.Second)
			for oc.Err != nil {
				if time.Now().After(deadline) {
					t.Fatalf("round %d: shard %d never acked: %v", round, oc.Shard, oc.Err)
				}
				retries++
				resp, err := sc.Group(oc.Shard).Insert(ctx, "Market", sub[oc.Shard])
				oc.Resp, oc.Err = resp, err
			}
			if got, want := oc.Resp.Inserted, len(sub[oc.Shard]); got != want {
				t.Fatalf("round %d: shard %d acked %d tuples, want %d", round, oc.Shard, got, want)
			}
			expected[oc.Shard] = append(expected[oc.Shard], sub[oc.Shard]...)
		}
		// Fleet reads stay available under the same faults (idempotent,
		// so the client's own retry machinery absorbs the drops).
		if round%8 == 0 {
			if _, err := sc.Info(ctx); err != nil {
				t.Errorf("round %d: fleet info: %v", round, err)
			}
		}
	}

	for _, f := range faults {
		f.SetDisabled(true)
	}

	// (1) + (2): exact content match per shard — a lost ack leaves a row
	// missing, a double-applied retry leaves a surplus one, and either
	// breaks the row-for-row comparison in order.
	for i := 0; i < numShards; i++ {
		got := shardDBs[i].Tuples("Market")
		if len(got) != len(expected[i]) {
			t.Fatalf("shard %d holds %d rows, acked %d — a batch was lost or double-applied",
				i, len(got), len(expected[i]))
		}
		for j, tu := range got {
			if !tu.Equal(expected[i][j]) {
				t.Fatalf("shard %d row %d: %v, want %v", i, j, tu, expected[i][j])
			}
			// (3) Placement: the row sits where the routing hash says.
			if home := shard.ShardOf(tu, numShards); home != i {
				t.Fatalf("shard %d row %d: %v belongs on shard %d", i, j, tu, home)
			}
		}
	}

	// The run must actually have exercised the faults — and the write
	// path must have needed retries, or the no-duplicates claim is
	// untested.
	var drops int64
	for _, f := range faults {
		_, d, _ := f.Stats()
		drops += d
	}
	if drops == 0 {
		t.Fatal("no connection was ever dropped — the run exercised a calm network")
	}
	if retries == 0 {
		t.Fatal("no write ever needed a retry — the no-duplicates guarantee went untested")
	}
	t.Logf("shard chaos: %d rounds, %d write retries, %d dropped connections, shard sizes %v/%v",
		rounds, retries, drops, len(expected[0]), len(expected[1]))
}
