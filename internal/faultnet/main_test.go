package faultnet

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine behind: the
// fault-injection proxy's per-connection pumps must exit on Close even
// with partitions and latency faults active.
func TestMain(m *testing.M) {
	leakcheck.VerifyTestMain(m)
}
