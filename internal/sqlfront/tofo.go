package sqlfront

import (
	"fmt"

	"repro/internal/fo"
	"repro/internal/plan"
	"repro/internal/schema"
)

// ToFO compiles a SELECT statement into the equivalent FO(+,·,<) query
// (ignoring LIMIT, which is a presentation concern): the selected columns
// become free variables and the FROM/WHERE clauses become an existential
// conjunction. The compilation connects the two front-ends — SQL results
// measured through the conditional pipeline and through the general
// Prop 5.3 translation of the compiled query must agree, which the test
// suite exploits for randomized cross-validation.
func ToFO(q *Query, s *schema.Schema) (*fo.Query, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("sqlfront: query needs at least one table")
	}
	b, err := plan.NewResolver(q, s)
	if err != nil {
		return nil, err
	}
	// One variable per (alias, column); selected columns become the free
	// variables, everything else is existentially quantified.
	varName := func(c ColRef) string { return c.Table + "_" + c.Col }

	selected := make(map[string]bool, len(q.Select))
	var free []fo.FreeVar
	for _, c := range q.Select {
		t, err := b.ColType(c)
		if err != nil {
			return nil, err
		}
		srt := fo.SortBase
		if t == schema.Num {
			srt = fo.SortNum
		}
		name := varName(c)
		if selected[name] {
			return nil, fmt.Errorf("sqlfront: column %s selected twice", c)
		}
		selected[name] = true
		free = append(free, fo.FreeVar{Name: name, Sort: srt})
	}

	var conj []fo.Formula
	var bound []fo.FreeVar
	for _, tr := range q.From {
		rel := b.Relation(tr.Alias)
		args := make([]fo.Term, rel.Arity())
		for i, col := range rel.Columns {
			ref := ColRef{Table: tr.Alias, Col: col.Name}
			name := varName(ref)
			args[i] = fo.Var{Name: name}
			if !selected[name] {
				srt := fo.SortBase
				if col.Type == schema.Num {
					srt = fo.SortNum
				}
				bound = append(bound, fo.FreeVar{Name: name, Sort: srt})
			}
		}
		conj = append(conj, fo.Atom{Rel: tr.Relation, Args: args})
	}
	for _, c := range q.Where {
		f, err := condToFO(b, c, varName)
		if err != nil {
			return nil, err
		}
		conj = append(conj, f)
	}

	body := fo.AndAll(conj...)
	for i := len(bound) - 1; i >= 0; i-- {
		body = fo.Exists{Var: bound[i].Name, Sort: bound[i].Sort, Body: body}
	}
	return &fo.Query{Name: "q", Free: free, Body: body}, nil
}

func condToFO(b *plan.Resolver, c Condition, varName func(ColRef) string) (fo.Formula, error) {
	nc, err := b.Normalize(c)
	if err != nil {
		return nil, err
	}
	switch nc.Kind {
	case CondBaseEq:
		return fo.BaseEq{L: fo.Var{Name: varName(nc.LCol)}, R: fo.Var{Name: varName(nc.RCol)}}, nil
	case CondBaseEqConst:
		return fo.BaseEq{L: fo.Var{Name: varName(nc.LCol)}, R: fo.BaseConst{Value: nc.Lit}}, nil
	case CondNumCmp:
		l, err := exprToFO(nc.LExp, varName)
		if err != nil {
			return nil, err
		}
		r, err := exprToFO(nc.RExp, varName)
		if err != nil {
			return nil, err
		}
		op := [...]fo.CmpOp{fo.Lt, fo.Le, fo.EqNum, fo.NeNum, fo.Ge, fo.Gt}[nc.Op]
		return fo.Cmp{Op: op, L: l, R: r}, nil
	}
	return nil, fmt.Errorf("sqlfront: unknown condition kind")
}

func exprToFO(e *Expr, varName func(ColRef) string) (fo.Term, error) {
	switch e.Kind {
	case ExprCol:
		return fo.Var{Name: varName(e.Col)}, nil
	case ExprConst:
		return fo.NumConst{Value: e.Const}, nil
	case ExprNeg:
		x, err := exprToFO(e.L, varName)
		if err != nil {
			return nil, err
		}
		return fo.Neg{X: x}, nil
	case ExprAdd, ExprSub, ExprMul:
		l, err := exprToFO(e.L, varName)
		if err != nil {
			return nil, err
		}
		r, err := exprToFO(e.R, varName)
		if err != nil {
			return nil, err
		}
		switch e.Kind {
		case ExprAdd:
			return fo.Add{L: l, R: r}, nil
		case ExprSub:
			return fo.Sub{L: l, R: r}, nil
		default:
			return fo.Mul{L: l, R: r}, nil
		}
	}
	return nil, fmt.Errorf("sqlfront: unknown expression kind")
}
