package core

import (
	"fmt"
	"math"

	"repro/internal/geometry"
	"repro/internal/realfmla"
)

// FPRAS implements the Section 7 scheme for formulas arising from CQ(+,<)
// queries (linear atoms): homogenize φ, put it into DNF, interpret each
// disjunct as a convex cone intersected with the unit ball, and estimate
// the volume of the union of these bodies with the Karp–Luby estimator
// over per-body hit-and-run samplers and multiphase volume estimates —
// the oracle structure of the Bringmann–Friedrich FPRAS the paper invokes.
// The returned value approximates ν(φ) = Vol(∪ cones ∩ B) / Vol(B) with
// multiplicative error governed by eps (statistical, not a proven worst-
// case bound: the MCMC mixing constants of the underlying samplers are not
// reproduced here; see DESIGN.md).
//
// It returns an error if φ is not linear or its DNF exceeds
// Options.DNFLimit.
func (e *Engine) FPRAS(phi realfmla.Formula, eps float64) (Result, error) {
	if err := ValidateEps(eps); err != nil {
		return Result{}, err
	}
	reduced, vars := realfmla.Reduce(phi)
	n := len(vars)
	if n == 0 {
		return trivialResult(realfmla.Eval(reduced, nil), realfmla.NumVars(phi)), nil
	}
	if !realfmla.IsLinear(reduced) {
		return Result{}, fmt.Errorf("core: FPRAS requires linear constraints (CQ(+,<) regime)")
	}
	hom, err := realfmla.HomogenizeLinear(reduced)
	if err != nil {
		return Result{}, err
	}
	dnf, err := realfmla.ToDNF(hom, e.opts.DNFLimit)
	if err != nil {
		return Result{}, err
	}

	bodies, err := conesFromDNF(dnf, n)
	if err != nil {
		return Result{}, err
	}
	if len(bodies) == 0 {
		return Result{Value: 0, Exact: false, Method: MethodFPRAS, K: realfmla.NumVars(phi), RelevantK: n}, nil
	}

	// Sampling budgets scaled by 1/eps²; constants chosen empirically (the
	// theoretical constants of [9] are far larger than practical needs).
	perPhase := clampInt(int(24/(eps*eps)), 2000, 400000)
	union := clampInt(int(float64(len(bodies))*24/(eps*eps)), 4000, 2000000)

	vol, err := geometry.UnionVolume(bodies, e.rand(), geometry.UnionVolumeOptions{
		Samples: union,
		Volume:  geometry.VolumeOptions{SamplesPerPhase: perPhase},
	})
	if err != nil {
		return Result{}, err
	}
	nu := vol / geometry.BallVolume(n, 1)
	// Clamp statistical noise into [0,1].
	nu = math.Max(0, math.Min(1, nu))
	return Result{
		Value:     nu,
		Method:    MethodFPRAS,
		Samples:   union,
		K:         realfmla.NumVars(phi),
		RelevantK: n,
	}, nil
}

// conesFromDNF turns each DNF disjunct into a convex cone ∩ unit ball.
// Disjuncts containing a nontrivial equality atom define measure-zero sets
// and are dropped; ≠-atoms are dropped from their conjunction (they only
// remove a hyperplane, measure zero); <, ≤, >, ≥ atoms become halfspaces
// (strict and non-strict bound the same volume).
func conesFromDNF(dnf []realfmla.Conj, n int) ([]*geometry.Body, error) {
	var bodies []*geometry.Body
	for _, conj := range dnf {
		var normals [][]float64
		degenerate := false
		for _, a := range conj {
			c, c0, ok := a.P.LinearForm()
			if !ok {
				return nil, fmt.Errorf("core: nonlinear atom %s after homogenization", a)
			}
			if c0 != 0 {
				return nil, fmt.Errorf("core: atom %s not homogenized", a)
			}
			allZero := true
			for _, ci := range c {
				if ci != 0 {
					allZero = false
					break
				}
			}
			switch a.Rel {
			case realfmla.EQ:
				if !allZero {
					degenerate = true // measure-zero disjunct
				}
			case realfmla.NE:
				if allZero {
					degenerate = true // 0 ≠ 0 is false
				}
				// Otherwise: removing a hyperplane does not change volume.
			case realfmla.LT, realfmla.LE:
				if allZero {
					if a.Rel == realfmla.LT {
						degenerate = true // 0 < 0
					}
					continue
				}
				normals = append(normals, c)
			case realfmla.GT, realfmla.GE:
				if allZero {
					if a.Rel == realfmla.GT {
						degenerate = true
					}
					continue
				}
				neg := make([]float64, len(c))
				for i, ci := range c {
					neg[i] = -ci
				}
				normals = append(normals, neg)
			}
			if degenerate {
				break
			}
		}
		if degenerate {
			continue
		}
		bodies = append(bodies, geometry.NewConeInBall(n, normals))
	}
	return bodies, nil
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
