package arithdb

import (
	"context"

	"repro/internal/core"
)

// MeasuredSQLCandidate is one candidate answer of a fused SQL
// measurement: the tuple, its constraint, and its confidence level.
type MeasuredSQLCandidate = core.MeasuredCandidate

// SQLMeasured is the output of Session.MeasureSQL / Engine.MeasureSQL.
type SQLMeasured = core.SQLMeasured

// Session ties a database to an engine configuration and runs the fused
// SQL pipeline of the paper's experiments: plan → streaming execution →
// per-candidate constraint aggregation → concurrent measurement. Create
// one Session per goroutine (they are cheap and share the database's
// lazily built indexes); a Session's own methods must not be called
// concurrently, though MeasureSQL fans measurement out internally.
type Session struct {
	d      *Database
	engine *Engine
}

// NewSession returns a session over the database with the given engine
// options (measurement knobs and planner toggles alike).
func NewSession(d *Database, opts EngineOptions) *Session {
	return &Session{d: d, engine: core.New(opts)}
}

// Database returns the session's database.
func (s *Session) Database() *Database { return s.d }

// Insert adds one tuple to the named relation. Inserts are atomic (a
// tuple failing validation leaves the database bit-identical) and
// incremental: cached equality indexes, distinct-key statistics and
// active-domain inventories are updated in place, so interleaving
// inserts with MeasureSQL keeps hardware speed instead of re-indexing
// per query.
func (s *Session) Insert(rel string, vals ...Value) error {
	return s.d.Insert(rel, Tuple(vals))
}

// InsertBatch adds tuples to the named relation as one atomic batch:
// every tuple is validated before the first is appended, and the batch
// commits as a single database version step.
func (s *Session) InsertBatch(rel string, tuples []Tuple) error {
	return s.d.InsertBatch(rel, tuples)
}

// Snapshot returns an immutable view of the session's database for
// concurrent readers: other goroutines (or other Sessions) can keep
// querying the snapshot while this session inserts. See
// Database.Snapshot.
func (s *Session) Snapshot() *Database { return s.d.Snapshot() }

// Engine returns the session's engine, for direct measurement calls
// (e.g. ε-sweeps over previously evaluated candidates, which then share
// the engine's compiled-formula cache).
func (s *Session) Engine() *Engine { return s.engine }

// SQL parses and conditionally evaluates a SELECT statement through the
// planner/executor, returning candidate tuples with their constraints.
func (s *Session) SQL(src string) (*SQLResult, error) {
	q, err := ParseSQL(src)
	if err != nil {
		return nil, err
	}
	return s.engine.EvaluateSQL(q, s.d)
}

// EvaluateSQL conditionally evaluates an already parsed query through
// the planner/executor with the session's toggles.
func (s *Session) EvaluateSQL(q *SQLQuery) (*SQLResult, error) {
	return s.engine.EvaluateSQL(q, s.d)
}

// MeasureSQL parses a SELECT statement and runs the fused pipeline:
// streaming candidate enumeration overlapped with concurrent AFPRAS
// measurement of each candidate's constraint at additive error eps and
// failure probability delta. See Engine.MeasureSQL for the determinism
// contract.
func (s *Session) MeasureSQL(src string, eps, delta float64) (*SQLMeasured, error) {
	q, err := ParseSQL(src)
	if err != nil {
		return nil, err
	}
	return s.engine.MeasureSQL(q, s.d, eps, delta)
}

// MeasureSQLQuery is MeasureSQL over an already parsed query.
func (s *Session) MeasureSQLQuery(q *SQLQuery, eps, delta float64) (*SQLMeasured, error) {
	return s.engine.MeasureSQL(q, s.d, eps, delta)
}

// SQLStreamInfo summarizes a completed MeasureSQLStream run.
type SQLStreamInfo = core.SQLStreamInfo

// MeasureSQLStream is the streaming form of MeasureSQL: each measured
// candidate is handed to yield as soon as it is final, in candidate
// order, so callers can render top-k answers while enumeration and
// measurement are still running. The delivered sequence is bit-identical
// to MeasureSQL's Candidates slice; see Engine.MeasureSQLStream for the
// yield contract (called sequentially from an internal goroutine) and
// the cancellation semantics of ctx.
func (s *Session) MeasureSQLStream(ctx context.Context, src string, eps, delta float64, yield func(idx int, c MeasuredSQLCandidate) error) (*SQLStreamInfo, error) {
	q, err := ParseSQL(src)
	if err != nil {
		return nil, err
	}
	return s.engine.MeasureSQLStream(ctx, q, s.d, eps, delta, yield)
}
