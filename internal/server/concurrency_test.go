package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestServerConcurrentDeterminism: N goroutine clients hammering one
// shared Database with mixed queries and ε-sweeps must each get
// bit-identical results regardless of interleaving. Run under -race this
// is also the data-race probe of every shared structure: the database's
// lazily built indexes and inventories, the cross-request kernel cache,
// and the admission gate. (CI's race job runs the whole package.)
func TestServerConcurrentDeterminism(t *testing.T) {
	opts := core.Options{Seed: 11}
	_, c, _ := newTestServer(t, Config{Engine: opts, MaxInflight: 4, QueueTimeout: 0})

	// The workload mix: every query at several error levels (the ε-sweep
	// shape that exercises the shared compiled-kernel cache).
	type work struct {
		src        string
		eps, delta float64
	}
	var mix []work
	for _, src := range testWorkloads {
		for _, eps := range []float64{0.05, 0.1} {
			mix = append(mix, work{src: src, eps: eps, delta: 0.25})
		}
	}
	refs := make([]*core.SQLMeasured, len(mix))
	for i, wk := range mix {
		refs[i] = directMeasure(t, opts, wk.src, wk.eps, wk.delta)
	}

	const (
		clients = 8
		rounds  = 5
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g*rounds + r*3 + g) % len(mix) // staggered mix per client
				wk := mix[i]
				got, err := c.MeasureSQL(ctx, wk.src, wk.eps, wk.delta)
				if err != nil {
					errCh <- fmt.Errorf("client %d round %d: %w", g, r, err)
					return
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							errCh <- fmt.Errorf("client %d round %d: %v", g, r, p)
						}
					}()
					assertParity(fatalToPanic{t}, fmt.Sprintf("client %d round %d mix %d", g, r, i), got, refs[i])
				}()
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// fatalToPanic adapts assertParity's testing.TB Fatalf onto panics so
// worker goroutines (where t.Fatalf is illegal) can report through their
// error channel.
type fatalToPanic struct{ *testing.T }

func (f fatalToPanic) Fatalf(format string, args ...any) { panic(fmt.Sprintf(format, args...)) }
func (f fatalToPanic) Fatal(args ...any)                 { panic(fmt.Sprint(args...)) }
func (f fatalToPanic) Helper()                           {}
