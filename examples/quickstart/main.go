// Quickstart: the paper's opening example. Relation R(A, B) holds a single
// tuple (⊥1, ⊥2) of numerical nulls; should σ_{A>B} select it? Classical
// certain answers say "no" (there are interpretations where A ≤ B), but
// intuitively the tuple is selected half the time. The measure of
// certainty makes that intuition precise: μ = 1/2, computed exactly.
package main

import (
	"fmt"
	"log"

	arithdb "repro"
)

func main() {
	s := arithdb.MustSchema(arithdb.MustRelation("R",
		arithdb.Col("a", arithdb.NumCol),
		arithdb.Col("b", arithdb.NumCol)))

	d := arithdb.NewDatabase(s)
	d.MustInsert("R", arithdb.NullNum(0), arithdb.NullNum(1))

	q := arithdb.MustParseQuery(`sel() := exists a:num, b:num . (R(a, b) and a > b)`)
	if err := arithdb.Typecheck(q, s); err != nil {
		log.Fatal(err)
	}

	engine := arithdb.NewEngine(arithdb.EngineOptions{Seed: 1})
	res, err := engine.Measure(q, d, nil, 0.01, 0.05)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query:    %s\n", q)
	fmt.Printf("database: R = {(⊤0, ⊤1)}\n")
	fmt.Printf("μ(σ_{A>B} selects the tuple) = %g", res.Value)
	if res.Rat != nil {
		fmt.Printf(" (exactly %s, method %s)", res.Rat, res.Method)
	}
	fmt.Println()

	// A tuple with one known value: (5, ⊥). Now μ is still 1/2 — the null
	// is bigger or smaller than 5 with equal asymptotic likelihood — but
	// constraining the null changes it.
	d2 := arithdb.NewDatabase(s)
	d2.MustInsert("R", arithdb.Num(5), arithdb.NullNum(0))
	res2, err := engine.Measure(q, d2, nil, 0.01, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("μ over R = {(5, ⊤0)}            = %g (%s)\n", res2.Value, res2.Method)

	// With the extra filter b > 0 the null must land in the bounded
	// interval (0, 5) — and bounded regions have asymptotic measure zero
	// under the agnostic semantics (any fixed finite range is negligible
	// against the whole numerical domain), so μ drops to 0.
	q3 := arithdb.MustParseQuery(`sel() := exists a:num, b:num . (R(a, b) and a > b and b > 0)`)
	res3, err := engine.Measure(q3, d2, nil, 0.01, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("μ with the extra filter b > 0   = %g (%s; bounded region ⇒ measure 0)\n",
		res3.Value, res3.Method)
}
