// Package server is the maporder positive fixture: map ranges feeding
// order-sensitive sinks, with and without the collect-then-sort idiom.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// appendNoSort builds a payload in map iteration order — flagged.
func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside a map range with no sort after the loop`
	}
	return out
}

// collectThenSort is the idiom the analyzer steers toward — clean.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sendInRange externalizes iteration order on a channel — always flagged.
func sendInRange(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `order-sensitive write inside a map range`
	}
}

// encodeInRange writes JSON in iteration order — always flagged, a sort
// after the loop cannot repair an order already observed.
func encodeInRange(m map[string]int, w io.Writer) {
	enc := json.NewEncoder(w)
	var keys []string
	for k := range m {
		_ = enc.Encode(k) // want `order-sensitive write inside a map range`
		keys = append(keys, k)
	}
	sort.Strings(keys)
}

// fprintInRange prints in iteration order — flagged.
func fprintInRange(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `order-sensitive write inside a map range`
	}
}

// sliceRange iterates a slice, not a map — clean.
func sliceRange(s []string, ch chan string) {
	var out []string
	for _, v := range s {
		out = append(out, v)
		ch <- v
	}
}

// countOnly aggregates without ordering — clean.
func countOnly(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// allowed demonstrates the escape hatch on an intentionally unordered
// payload.
func allowed(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k //lint:allow maporder consumer treats this as an unordered set
	}
}
