package core

import (
	"context"
	"sync"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/realfmla"
)

// PlanOptions exposes the engine's planner configuration, so an external
// coordinator (the sharded scatter-gather in internal/shard) can build
// per-shard plans under exactly the toggles this engine would use.
func (e *Engine) PlanOptions() plan.Options { return e.planOptions() }

// ExecOptions exposes the engine's executor configuration, for the same
// external-coordinator use as PlanOptions.
func (e *Engine) ExecOptions() exec.Options { return e.execOptions() }

// RaceApplies reports whether a LIMIT-k query under this engine's
// configuration routes through the adaptive top-k race (see raceApplies):
// coordinators must then aggregate the full candidate field (enumerate
// with LIMIT 0) before calling MeasureCandidatesStream with the limit.
func (e *Engine) RaceApplies(limit int) bool {
	return limit > 0 && !e.opts.NoAdaptive && !e.opts.PreferFPRAS
}

// MeasureCandidatesStream measures an already-aggregated candidate set
// and delivers the results exactly as MeasureSQLStream would have for a
// query with the given LIMIT: bit-identical measures (every candidate is
// measured by a per-candidate-seeded pool engine, keyed by its index in
// res.Candidates), delivered through yield in candidate order.
//
// It is the measurement half of the fused pipeline with enumeration
// factored out, so a scatter-gather coordinator that reassembles the
// global candidate stream from per-shard executors plugs back into the
// identical race / pool / sequential paths. The aggregation contract
// mirrors the internal pipelines: when RaceApplies(limit), res must hold
// the full candidate field (aggregated without the limit) and the race
// delivers the top-k winners; otherwise res must already have the limit
// applied (first-k-distinct) and every candidate is measured.
func (e *Engine) MeasureCandidatesStream(ctx context.Context, res *exec.Result, limit int, eps, delta float64, yield func(idx int, c MeasuredCandidate) error) (*SQLStreamInfo, error) {
	if err := checkEpsDelta(eps, delta); err != nil {
		return nil, err
	}
	info := &SQLStreamInfo{
		NullIDs:     res.NullIDs,
		Index:       res.Index,
		Derivations: res.Derivations,
	}
	if e.RaceApplies(limit) {
		phis := make([]realfmla.Formula, len(res.Candidates))
		for i, c := range res.Candidates {
			phis[i] = c.Phi
		}
		oc, err := e.race(ctx, phis, limit, eps, delta, func(pos, idx int, r Result) error {
			c := res.Candidates[idx]
			return yield(pos, MeasuredCandidate{Tuple: c.Tuple, Phi: c.Phi, Measure: r})
		})
		if err != nil {
			return nil, err
		}
		info.Count = oc.delivered
		info.SamplesDrawn = oc.samplesDrawn
		info.Rounds = oc.rounds
		return info, nil
	}
	info.Count = len(res.Candidates)
	if e.opts.poolWorkers() <= 1 {
		if err := e.measureCandidatesSeq(ctx, res.Candidates, eps, delta, yield); err != nil {
			return nil, err
		}
		return info, nil
	}
	if err := e.measureCandidatesPool(ctx, res.Candidates, eps, delta, yield); err != nil {
		return nil, err
	}
	return info, nil
}

// measureCandidatesSeq measures candidates in index order on one
// reusable, per-candidate-reseeded engine — the measurement half of
// measureStreamSeq.
func (e *Engine) measureCandidatesSeq(ctx context.Context, cands []exec.Candidate, eps, delta float64, yield func(int, MeasuredCandidate) error) error {
	o := e.opts
	kernels := e.poolKernels()
	eng := e.itemEngine(0)
	for i, c := range cands {
		if err := ctx.Err(); err != nil {
			return err
		}
		eng.resetItem(itemOptions(o, i), kernels)
		r, err := eng.MeasureFormula(c.Phi, eps, delta)
		if err != nil {
			return err
		}
		if err := yield(i, MeasuredCandidate{Tuple: c.Tuple, Phi: c.Phi, Measure: r}); err != nil {
			return err
		}
	}
	return nil
}

// measureCandidatesPool fans candidates out over PoolWorkers reusable
// worker engines while the emitter restores candidate order — the
// measurement half of measureStreamPool.
func (e *Engine) measureCandidatesPool(ctx context.Context, cands []exec.Candidate, eps, delta float64, yield func(int, MeasuredCandidate) error) error {
	type job struct {
		idx  int
		cand exec.Candidate
	}
	type measured struct {
		idx  int
		cand exec.Candidate
		res  Result
		err  error
	}
	workers := e.opts.poolWorkers()
	jobs := make(chan job, workers)
	results := make(chan measured, workers)
	var wg sync.WaitGroup
	o := e.opts
	kernels := e.poolKernels()
	engines := make([]*Engine, workers)
	for w := range engines {
		engines[w] = e.itemEngine(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for j := range jobs {
				if err := ctx.Err(); err != nil {
					results <- measured{idx: j.idx, cand: j.cand, err: err}
					continue
				}
				eng.resetItem(itemOptions(o, j.idx), kernels)
				r, err := eng.MeasureFormula(j.cand.Phi, eps, delta)
				results <- measured{idx: j.idx, cand: j.cand, res: r, err: err}
			}
		}(engines[w])
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var (
		emitDone   = make(chan struct{})
		yieldErr   error
		measureErr error
	)
	go func() {
		defer close(emitDone)
		oy := orderedYield{yield: func(idx int, m MeasuredCandidate) error {
			if yieldErr == nil && measureErr == nil {
				if err := yield(idx, m); err != nil {
					yieldErr = err
				}
			}
			return nil // keep draining; the sticky error wins at the end
		}}
		for m := range results {
			if m.err != nil {
				if measureErr == nil {
					measureErr = m.err
				}
				continue
			}
			_ = oy.deliver(m.idx, MeasuredCandidate{Tuple: m.cand.Tuple, Phi: m.cand.Phi, Measure: m.res})
		}
	}()

	for i, c := range cands {
		jobs <- job{idx: i, cand: c}
	}
	close(jobs)
	<-emitDone
	if measureErr != nil {
		return measureErr
	}
	return yieldErr
}
