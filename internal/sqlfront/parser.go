package sqlfront

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a SELECT statement:
//
//	SELECT A.col, B.col FROM Rel A, Rel2 B
//	WHERE A.x = B.y AND A.p * A.q <= 0.5 * B.r LIMIT 25
//
// Grammar notes: WHERE is a conjunction (AND only), matching the
// conjunctive decision-support queries of the paper's experiments; numeric
// expressions support + - * and division by numeric literals; string
// literals use single quotes; keywords are case-insensitive.
func Parse(input string) (*Query, error) {
	toks, err := lexSQL(input)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return q, nil
}

// MustParse is Parse that panics on error.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type sqlTokKind uint8

const (
	sqlEOF sqlTokKind = iota
	sqlIdent
	sqlNumber
	sqlString
	sqlSymbol
)

type sqlToken struct {
	kind sqlTokKind
	text string
	num  float64
	pos  int
}

var sqlSymbols = []string{"<=", ">=", "<>", "!=", "<", ">", "=", "+", "-", "*", "/", "(", ")", ",", "."}

func lexSQL(input string) ([]sqlToken, error) {
	var toks []sqlToken
	i, n := 0, len(input)
outer:
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			for j < n && input[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlfront: unterminated string at offset %d", i)
			}
			toks = append(toks, sqlToken{kind: sqlString, text: input[i+1 : j], pos: i})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.') {
				j++
			}
			f, err := strconv.ParseFloat(input[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("sqlfront: bad number %q at offset %d", input[i:j], i)
			}
			toks = append(toks, sqlToken{kind: sqlNumber, num: f, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, sqlToken{kind: sqlIdent, text: input[i:j], pos: i})
			i = j
		default:
			for _, s := range sqlSymbols {
				if strings.HasPrefix(input[i:], s) {
					toks = append(toks, sqlToken{kind: sqlSymbol, text: s, pos: i})
					i += len(s)
					continue outer
				}
			}
			return nil, fmt.Errorf("sqlfront: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, sqlToken{kind: sqlEOF, pos: n})
	return toks, nil
}

type sqlParser struct {
	toks []sqlToken
	i    int
}

func (p *sqlParser) peek() sqlToken { return p.toks[p.i] }
func (p *sqlParser) next() sqlToken { t := p.toks[p.i]; p.i++; return t }
func (p *sqlParser) atEOF() bool    { return p.peek().kind == sqlEOF }

func (p *sqlParser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlfront: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *sqlParser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == sqlIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *sqlParser) symbol(s string) bool {
	t := p.peek()
	if t.kind == sqlSymbol && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *sqlParser) expectSymbol(s string) error {
	if !p.symbol(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.peek()
	if t.kind != sqlIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.i++
	return t.text, nil
}

func (p *sqlParser) colRef() (ColRef, error) {
	tbl, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if err := p.expectSymbol("."); err != nil {
		return ColRef{}, err
	}
	col, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	return ColRef{Table: tbl, Col: col}, nil
}

func (p *sqlParser) query() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, c)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		rel, err := p.ident()
		if err != nil {
			return nil, err
		}
		alias, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, TableRef{Relation: rel, Alias: alias})
		if !p.symbol(",") {
			break
		}
	}
	if p.keyword("WHERE") {
		for {
			c, err := p.condition()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, c)
			if !p.keyword("AND") {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		t := p.peek()
		if t.kind != sqlNumber || t.num != float64(int(t.num)) || t.num <= 0 {
			return nil, p.errf("LIMIT expects a positive integer, found %q", t.text)
		}
		p.i++
		q.Limit = int(t.num)
	}
	return q, nil
}

// condition parses one conjunct. The base-vs-numeric distinction is
// resolved later against the schema; syntactically, "col = col" and
// "col = 'lit'" are parsed as candidate base equalities and everything
// else as numeric comparison. A "col = col" over numeric columns is
// reinterpreted during binding.
func (p *sqlParser) condition() (Condition, error) {
	l, err := p.expr()
	if err != nil {
		return Condition{}, err
	}
	t := p.peek()
	if t.kind != sqlSymbol {
		return Condition{}, p.errf("expected comparison operator, found %q", t.text)
	}
	var op CmpOp
	switch t.text {
	case "<":
		op = Lt
	case "<=":
		op = Le
	case "=":
		op = Eq
	case "<>", "!=":
		op = Ne
	case ">=":
		op = Ge
	case ">":
		op = Gt
	default:
		return Condition{}, p.errf("expected comparison operator, found %q", t.text)
	}
	p.i++
	if op == Eq && l.Kind == ExprCol && p.peek().kind == sqlString {
		lit := p.next().text
		return Condition{Kind: CondBaseEqConst, LCol: l.Col, Lit: lit}, nil
	}
	r, err := p.expr()
	if err != nil {
		return Condition{}, err
	}
	if op == Eq && l.Kind == ExprCol && r.Kind == ExprCol {
		// Possibly a base join condition; binding decides by column types.
		return Condition{Kind: CondBaseEq, LCol: l.Col, RCol: r.Col, Op: op, LExp: l, RExp: r}, nil
	}
	return Condition{Kind: CondNumCmp, Op: op, LExp: l, RExp: r}, nil
}

func (p *sqlParser) expr() (*Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.symbol("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Expr{Kind: ExprAdd, L: l, R: r}
		case p.symbol("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &Expr{Kind: ExprSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *sqlParser) mulExpr() (*Expr, error) {
	l, err := p.atomExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.symbol("*"):
			r, err := p.atomExpr()
			if err != nil {
				return nil, err
			}
			l = &Expr{Kind: ExprMul, L: l, R: r}
		case p.symbol("/"):
			r, err := p.atomExpr()
			if err != nil {
				return nil, err
			}
			if r.Kind != ExprConst || r.Const == 0 {
				return nil, p.errf("division is only supported by nonzero numeric literals")
			}
			l = &Expr{Kind: ExprMul, L: l, R: &Expr{Kind: ExprConst, Const: 1 / r.Const}}
		default:
			return l, nil
		}
	}
}

func (p *sqlParser) atomExpr() (*Expr, error) {
	t := p.peek()
	switch {
	case t.kind == sqlNumber:
		p.i++
		return &Expr{Kind: ExprConst, Const: t.num}, nil
	case t.kind == sqlSymbol && t.text == "-":
		p.i++
		x, err := p.atomExpr()
		if err != nil {
			return nil, err
		}
		if x.Kind == ExprConst {
			return &Expr{Kind: ExprConst, Const: -x.Const}, nil
		}
		return &Expr{Kind: ExprNeg, L: x}, nil
	case t.kind == sqlSymbol && t.text == "(":
		p.i++
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == sqlIdent:
		c, err := p.colRef()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprCol, Col: c}, nil
	default:
		return nil, p.errf("expected expression, found %q", t.text)
	}
}
