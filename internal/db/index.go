package db

import (
	"maps"

	"repro/internal/schema"
	"repro/internal/value"
)

// EqIndex is a per-column equality index: for each distinct column value,
// the ordinals (insertion positions) of the tuples carrying it, ascending.
// Entries are keyed by the columnar equality codes, so a build is one
// sequential scan over the column's flat arrays and a probe is one integer
// map lookup. A marked null indexes — and therefore equi-joins — only with
// itself, the bijective-valuation regime of Prop 5.2. The index is owned
// by the database and must not be modified.
type EqIndex struct {
	// base groups base-column rows by packed code (dictID<<1 for
	// constants, nullID<<1|1 for nulls); nil for numerical columns.
	base map[int32][]int32
	// num and nulls group numerical-column rows by canonical constant bit
	// pattern and by null ID respectively; nil for base columns.
	num   map[uint64][]int32
	nulls map[int32][]int32
}

// Base returns the row ordinals carrying the given packed base code.
func (ix *EqIndex) Base(code int32) []int32 { return ix.base[code] }

// Lookup returns the row ordinals whose column value equals v — the
// boundary-type probe used by tests and tools (the executor probes Base
// directly).
func (ix *EqIndex) Lookup(d *Database, v value.Value) []int32 {
	switch v.Kind() {
	case value.BaseConst:
		code, ok := d.LookupBaseCode(v.Str())
		if !ok {
			return nil
		}
		return ix.base[code]
	case value.BaseNull:
		return ix.base[int32(v.NullID())<<1|1]
	case value.NumConst:
		return ix.num[canonFloatBits(v.Float())]
	default:
		return ix.nulls[int32(v.NullID())]
	}
}

// Distinct returns the number of distinct keys in the index — the
// per-column cardinality statistic the planner's cost-based join ordering
// uses to estimate join fanout. Incremental maintenance keeps it fresh:
// an insert updates the group maps in place, so the planner's estimates
// track the live relation without a rebuild.
func (ix *EqIndex) Distinct() int { return len(ix.base) + len(ix.num) + len(ix.nulls) }

// clone returns a copy-on-write duplicate: fresh group maps over the
// shared (append-only) group slices. The writer appends rows to the
// clone's groups; a snapshot holding the original never observes them —
// its map still carries the shorter slice headers.
func (ix *EqIndex) clone() *EqIndex {
	return &EqIndex{
		base:  maps.Clone(ix.base),
		num:   maps.Clone(ix.num),
		nulls: maps.Clone(ix.nulls),
	}
}

// addRow appends one freshly inserted row to its group, keyed exactly as
// BuildIndex keys a full scan. Rows arrive in ascending ordinal order, so
// groups stay ascending. code is the row's packed base code (base
// columns) or null ID (NumNull rows); it is ignored for NumConst rows.
func (ix *EqIndex) addRow(v value.Value, code int32, row int32) {
	switch v.Kind() {
	case value.BaseConst, value.BaseNull:
		ix.base[code] = append(ix.base[code], row)
	case value.NumConst:
		bits := canonFloatBits(v.Float())
		ix.num[bits] = append(ix.num[bits], row)
	default:
		ix.nulls[code] = append(ix.nulls[code], row)
	}
}

type indexKey struct {
	rel string
	col int
}

// BuildIndex builds an equality index of the given relation column with
// one sequential scan, without touching the database's cache (the
// transient-index mode of the executor). Use Index for the cached variant.
// The group maps are allocated (from the schema) even when the relation
// has no rows yet, so an index cached while the relation was empty can
// be extended in place by later inserts.
func (d *Database) BuildIndex(rel string, col int) *EqIndex {
	ix := &EqIndex{}
	r := d.schema.Relation(rel)
	if r == nil || col < 0 || col >= len(r.Columns) {
		return ix
	}
	tb := d.table(rel)
	if r.Columns[col].Type == schema.Base {
		ix.base = make(map[int32][]int32)
		if tb == nil {
			return ix
		}
		for i, code := range tb.cols[col].codes {
			ix.base[code] = append(ix.base[code], int32(i))
		}
		return ix
	}
	ix.num = make(map[uint64][]int32)
	ix.nulls = make(map[int32][]int32)
	if tb == nil {
		return ix
	}
	c := &tb.cols[col]
	for i, k := range c.kinds {
		if k == value.NumConst {
			bits := canonFloatBits(c.nums[i])
			ix.num[bits] = append(ix.num[bits], int32(i))
		} else {
			ix.nulls[c.codes[i]] = append(ix.nulls[c.codes[i]], int32(i))
		}
	}
	return ix
}

// Index returns the equality index of the given relation column, building
// it on first use and caching it for the lifetime of the database: an
// insert extends the cached groups in place (copy-on-write when a
// snapshot shares them) instead of dropping them. Concurrent callers are
// safe; each (relation, column) pair is built at most once.
//
// An index built lazily on a snapshot is also offered back to the
// snapshot's origin writer (adoptIndex): in the server regime every
// query runs on a snapshot, so without adoption the writer would never
// accumulate indexes to maintain and each new snapshot would rebuild
// from scratch — adoption is what keeps incremental maintenance live
// for snapshot-only readers.
func (d *Database) Index(rel string, col int) *EqIndex {
	k := indexKey{rel, col}
	d.mu.Lock()
	if ix, ok := d.indexes[k]; ok {
		d.mu.Unlock()
		return ix
	}
	ix := d.BuildIndex(rel, col)
	if d.indexes == nil {
		d.indexes = make(map[indexKey]*EqIndex)
	}
	d.indexes[k] = ix
	d.mu.Unlock()
	if d.frozen && d.origin != nil {
		d.origin.adoptIndex(k, ix, d.version.Load())
	}
	return ix
}

// adoptIndex installs an index a snapshot built into the writer's cache,
// marked shared (the writer clones before extending it), provided the
// writer is still at the snapshot's version — the index covers exactly
// the writer's rows then — and has not built its own meanwhile.
func (w *Database) adoptIndex(k indexKey, ix *EqIndex, version int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.version.Load() != version || w.indexes[k] != nil {
		return
	}
	if w.indexes == nil {
		w.indexes = make(map[indexKey]*EqIndex)
	}
	w.indexes[k] = ix
	if w.sharedIx == nil {
		w.sharedIx = make(map[indexKey]bool)
	}
	w.sharedIx[k] = true
}

// writableIndex returns the cached index of (rel, col) ready for in-place
// extension, cloning it first when a published snapshot still references
// it; nil when the column has no cached index yet (it stays lazy).
// Callers hold d.mu.
func (d *Database) writableIndex(rel string, col int) *EqIndex {
	if len(d.indexes) == 0 {
		return nil
	}
	k := indexKey{rel, col}
	ix := d.indexes[k]
	if ix == nil {
		return nil
	}
	if d.sharedIx[k] {
		ix = ix.clone()
		d.indexes[k] = ix
		delete(d.sharedIx, k)
	}
	return ix
}
