package poly

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randPoly generates a small random polynomial in n variables with integer
// coefficients (so that ring-law checks are exact).
func randPoly(r *rand.Rand, n int) Poly {
	terms := r.Intn(4)
	p := Zero(n)
	for i := 0; i < terms; i++ {
		mono := Const(n, float64(r.Intn(11)-5))
		for j := 0; j < n; j++ {
			for e := r.Intn(3); e > 0; e-- {
				mono = mono.Mul(Var(n, j))
			}
		}
		p = p.Add(mono)
	}
	return p
}

func randPoint(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(r.Intn(9) - 4)
	}
	return x
}

func TestConstructorsAndEval(t *testing.T) {
	p := Var(3, 1)                 // z1
	q := p.Mul(p).Add(Const(3, 2)) // z1² + 2
	if got := q.Eval([]float64{0, 3, 0}); got != 11 {
		t.Errorf("Eval = %g, want 11", got)
	}
	if q.Degree() != 2 {
		t.Errorf("Degree = %d", q.Degree())
	}
	if Zero(3).Degree() != -1 {
		t.Error("Degree(0) != -1")
	}
	if !Const(2, 0).IsZero() {
		t.Error("Const 0 not zero")
	}
}

func TestNormalization(t *testing.T) {
	// z0 + z0 - 2·z0 normalizes to 0.
	p := Var(2, 0).Add(Var(2, 0)).Sub(Var(2, 0).Scale(2))
	if !p.IsZero() {
		t.Errorf("cancellation failed: %s", p)
	}
	// equal monomials merge.
	q := Var(2, 0).Mul(Var(2, 1)).Add(Var(2, 1).Mul(Var(2, 0)))
	if len(q.Terms) != 1 || q.Terms[0].Coef != 2 {
		t.Errorf("merge failed: %s", q)
	}
}

func TestRingLaws(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(3)
		p, q, s := randPoly(r, n), randPoly(r, n), randPoly(r, n)
		if !p.Add(q).Equal(q.Add(p)) {
			t.Fatalf("Add not commutative: %s vs %s", p, q)
		}
		if !p.Mul(q).Equal(q.Mul(p)) {
			t.Fatalf("Mul not commutative: %s vs %s", p, q)
		}
		if !p.Add(q).Add(s).Equal(p.Add(q.Add(s))) {
			t.Fatal("Add not associative")
		}
		if !p.Mul(q.Add(s)).Equal(p.Mul(q).Add(p.Mul(s))) {
			t.Fatal("Mul does not distribute over Add")
		}
		if !p.Sub(p).IsZero() {
			t.Fatal("p - p != 0")
		}
	}
}

func TestEvalHomomorphism(t *testing.T) {
	// Eval commutes with the ring operations.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(3)
		p, q := randPoly(r, n), randPoly(r, n)
		x := randPoint(r, n)
		if p.Add(q).Eval(x) != p.Eval(x)+q.Eval(x) {
			t.Fatal("Eval not additive")
		}
		if p.Mul(q).Eval(x) != p.Eval(x)*q.Eval(x) {
			t.Fatal("Eval not multiplicative")
		}
	}
}

func TestLinearForm(t *testing.T) {
	// 2·z0 - 3·z1 + 5
	p := Var(2, 0).Scale(2).Add(Var(2, 1).Scale(-3)).Add(Const(2, 5))
	c, c0, ok := p.LinearForm()
	if !ok || c0 != 5 || !reflect.DeepEqual(c, []float64{2, -3}) {
		t.Errorf("LinearForm = %v, %v, %v", c, c0, ok)
	}
	if _, _, ok := Var(2, 0).Mul(Var(2, 1)).LinearForm(); ok {
		t.Error("quadratic classified linear")
	}
	if !p.IsLinear() {
		t.Error("linear poly misclassified")
	}
}

func TestDropConstantAndHomogenize(t *testing.T) {
	p := Var(2, 0).Scale(2).Add(Const(2, 5))
	if got := p.DropConstant(); !got.Equal(Var(2, 0).Scale(2)) {
		t.Errorf("DropConstant = %s", got)
	}
	// z0² + z0 + 1 homogenizes to z0².
	q := Var(1, 0).Mul(Var(1, 0)).Add(Var(1, 0)).Add(Const(1, 1))
	if got := q.Homogenize(); !got.Equal(Var(1, 0).Mul(Var(1, 0))) {
		t.Errorf("Homogenize = %s", got)
	}
}

func TestSubstituteRayMatchesEval(t *testing.T) {
	// p(k·a) as a polynomial in k must evaluate like p at the scaled point.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(3)
		p := randPoly(r, n)
		a := randPoint(r, n)
		u := p.SubstituteRay(a)
		for _, k := range []float64{0, 1, 2, 5} {
			scaled := make([]float64, n)
			for j := range scaled {
				scaled[j] = k * a[j]
			}
			if got, want := u.Eval(k), p.Eval(scaled); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("SubstituteRay mismatch at k=%g: %g vs %g (p=%s a=%v)", k, got, want, p, a)
			}
		}
	}
}

func TestUniArithmetic(t *testing.T) {
	u := Uni{1, 2}    // 1 + 2k
	v := Uni{0, 0, 3} // 3k²
	if got := u.Add(v); !reflect.DeepEqual(got, Uni{1, 2, 3}) {
		t.Errorf("Add = %v", got)
	}
	if got := u.Mul(v); !reflect.DeepEqual(got, Uni{0, 0, 3, 6}) {
		t.Errorf("Mul = %v", got)
	}
	if got := u.Sub(u); len(got) != 0 {
		t.Errorf("u-u = %v", got)
	}
	if u.Eval(2) != 5 {
		t.Errorf("Eval = %g", u.Eval(2))
	}
	if v.Degree() != 2 || (Uni{}).Degree() != -1 {
		t.Error("Degree wrong")
	}
}

func TestUniTrim(t *testing.T) {
	u := Uni{1, 0, 0}.Add(Uni{})
	if len(u) != 1 {
		t.Errorf("trailing zeros kept: %v", u)
	}
}

func TestAsymptoticSign(t *testing.T) {
	cases := []struct {
		u    Uni
		want int
	}{
		{Uni{}, 0},
		{Uni{5}, 1},
		{Uni{-5}, -1},
		{Uni{100, -1}, -1},   // eventually negative
		{Uni{-100, 0, 2}, 1}, // eventually positive
		{Uni{3, 1e-15}, 1},   // tiny leading coeff treated as zero → constant 3
	}
	for _, c := range cases {
		if got := c.u.AsymptoticSign(1e-12); got != c.want {
			t.Errorf("AsymptoticSign(%v) = %d, want %d", c.u, got, c.want)
		}
	}
}

func TestAsymptoticSignMatchesLargeK(t *testing.T) {
	// Property: for random integer polys the asymptotic sign equals the sign
	// at a large k.
	f := func(coeffs []int8) bool {
		u := make(Uni, len(coeffs))
		for i, c := range coeffs {
			u[i] = float64(c)
		}
		u = u.trim()
		s := u.AsymptoticSign(0)
		v := u.Eval(1e6)
		switch {
		case s > 0:
			return v > 0
		case s < 0:
			return v < 0
		default:
			return v == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on arity mismatch")
		}
	}()
	Var(2, 0).Add(Var(3, 0))
}
